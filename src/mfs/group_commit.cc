#include "mfs/group_commit.h"

#include <algorithm>

#include "fault/injector.h"

namespace sams::mfs {

GroupCommitter::GroupCommitter(SyncFn sync_fn, Options opts)
    : sync_fn_(std::move(sync_fn)), opts_(opts) {
  if (opts_.background) {
    flusher_ = std::thread([this] { ThreadMain(); });
  }
}

GroupCommitter::~GroupCommitter() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_flush_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void GroupCommitter::ThreadMain() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_flush_.wait(lk, [&] { return stop_ || pending_tokens_ > 0; });
    if (pending_tokens_ == 0) {
      if (stop_) return;  // drained; committers all satisfied
      continue;
    }
    // Window: give concurrent deliveries a moment to pile onto this
    // batch (unless we're shutting down or the batch is already full).
    if (!stop_ && opts_.window.count() > 0 &&
        pending_tokens_ < opts_.max_batch) {
      cv_flush_.wait_for(lk, opts_.window, [&] {
        return stop_ || pending_tokens_ >= opts_.max_batch;
      });
    }
    while (flush_in_progress_) cv_done_.wait(lk);
    if (pending_tokens_ == 0) continue;  // an explicit Flush() took them
    FlushRound(lk);
  }
}

util::Error GroupCommitter::FlushRound(std::unique_lock<std::mutex>& lk) {
  flush_in_progress_ = true;
  const std::uint64_t flushing = epoch_++;
  const std::size_t batch = pending_tokens_;
  pending_tokens_ = 0;
  lk.unlock();

  util::Error err = SAMS_FAULT_ERROR("mfs.commit.flush");
  int fsyncs = 0;
  if (err.ok()) {
    auto synced = sync_fn_();
    if (synced.ok()) {
      fsyncs = *synced;
      err = SAMS_FAULT_ERROR("mfs.commit.after_fsync");
    } else {
      err = synced.error();
    }
  }

  lk.lock();
  ++stats_.flushes;
  stats_.fsyncs += static_cast<std::uint64_t>(fsyncs);
  stats_.batch_max =
      std::max(stats_.batch_max, static_cast<std::uint64_t>(batch));
  if (batch_hist_ != nullptr && batch > 0) {
    batch_hist_->Observe(static_cast<double>(batch));
  }
  last_error_ = err;
  completed_epoch_ = flushing + 1;
  flush_in_progress_ = false;
  cv_done_.notify_all();
  return err;
}

util::Error GroupCommitter::Commit() {
  SAMS_RETURN_IF_ERROR(SAMS_FAULT_ERROR("mfs.commit.enqueue"));
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t my = epoch_;
  ++pending_tokens_;
  ++stats_.commits;
  if (opts_.background) {
    cv_flush_.notify_one();
    cv_done_.wait(lk, [&] { return completed_epoch_ > my; });
    return last_error_;
  }
  // Foreground: run the round inline, or ride a concurrent one.
  while (completed_epoch_ <= my) {
    if (flush_in_progress_) {
      cv_done_.wait(lk);
    } else {
      FlushRound(lk);
    }
  }
  return last_error_;
}

util::Error GroupCommitter::Flush() {
  std::unique_lock<std::mutex> lk(mu_);
  while (flush_in_progress_) cv_done_.wait(lk);
  return FlushRound(lk);
}

GroupCommitter::Stats GroupCommitter::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void GroupCommitter::BindMetrics(obs::Registry& registry, obs::Labels labels) {
  auto& hist = registry.GetHistogram(
      "sams_mfs_commit_batch_size",
      "durability tokens completed per group-commit flush round",
      obs::HistogramSpec{1.0, 2.0, 10}, labels);
  auto* commits = &registry.GetCounter(
      "sams_mfs_commit_tokens_total", "durability tokens enqueued", labels);
  auto* flushes = &registry.GetCounter("sams_mfs_commit_flushes_total",
                                       "group-commit flush rounds", labels);
  auto* fsyncs =
      &registry.GetCounter("sams_mfs_commit_fsyncs_total",
                           "fsync(2) calls issued by flush rounds", labels);
  {
    std::lock_guard<std::mutex> lk(mu_);
    batch_hist_ = &hist;
  }
  registry.AddCollector([this, commits, flushes, fsyncs] {
    const Stats s = stats();
    commits->Overwrite(s.commits);
    flushes->Overwrite(s.flushes);
    fsyncs->Overwrite(s.fsyncs);
  });
}

}  // namespace sams::mfs
