#include "fault/injector.h"

#include <ctime>

namespace sams::fault {

Injector& Injector::Global() {
  static Injector* injector = new Injector();  // never destroyed
  return *injector;
}

void Injector::Arm(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  rng_.Seed(seed);
  armed_.store(true, std::memory_order_relaxed);
}

void Injector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  points_.clear();
}

void Injector::Set(const std::string& point, Policy policy) {
  if (policy.action == Action::kCrash) policy.max_triggers = 1;
  std::lock_guard<std::mutex> lock(mutex_);
  State& state = points_[point];
  state.policy = std::move(policy);
  state.has_policy = true;
  state.skipped = 0;
}

void Injector::Clear(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.has_policy = false;
}

util::Error Injector::Hit(const char* point) {
  int delay_ms = 0;
  util::Error injected;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_.load(std::memory_order_relaxed)) return util::OkError();
    State& state = points_[point];
    ++state.hits;
    if (!state.has_policy) return util::OkError();
    const Policy& policy = state.policy;
    if (state.skipped < policy.skip) {
      ++state.skipped;
      return util::OkError();
    }
    if (policy.max_triggers >= 0 &&
        state.triggers >= static_cast<std::uint64_t>(policy.max_triggers)) {
      return util::OkError();
    }
    if (policy.probability < 1.0 && !rng_.Bernoulli(policy.probability)) {
      return util::OkError();
    }
    ++state.triggers;
    if (registry_ != nullptr) {
      registry_
          ->GetCounter("sams_fault_triggers_total",
                       "injected faults fired at this point",
                       {{"point", point}})
          .Inc();
    }
    switch (policy.action) {
      case Action::kDelay:
        delay_ms = policy.delay_ms;
        break;
      case Action::kError:
        injected = util::Error(policy.code,
                               policy.message + " @ " + point);
        break;
      case Action::kCrash:
        injected = util::Error(util::ErrorCode::kUnavailable,
                               std::string("simulated crash @ ") + point);
        break;
    }
  }
  if (delay_ms > 0) {
    // Sleep outside the lock so concurrent hits on other points and
    // threads are not serialized behind the delay.
    struct timespec ts;
    ts.tv_sec = delay_ms / 1000;
    ts.tv_nsec = static_cast<long>(delay_ms % 1000) * 1'000'000L;
    ::nanosleep(&ts, nullptr);
  }
  return injected;
}

std::uint64_t Injector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t Injector::triggers(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.triggers;
}

void Injector::BindMetrics(obs::Registry& registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  registry_ = &registry;
}

}  // namespace sams::fault
