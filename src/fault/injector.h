// sams::fault — deterministic fault injection for chaos testing.
//
// Production code marks interesting failure sites with a named
// injection point:
//
//   util::Error MfsVolume::MailNWrite(...) {
//     ...
//     SAMS_FAULT_POINT("mfs.nwrite.shared.after_data");   // may return
//     ...
//   }
//
// Tests and chaos runs arm the process-wide Injector with a seed and
// attach per-point policies: return a configured Error, sleep, or
// simulate a crash (a one-shot error-return that unwinds the call
// exactly where a process death would have truncated the work — the
// caller then reopens state from disk the way a restarted server
// would). Probabilistic policies draw from the injector's own seeded
// RNG, so a chaos run with a fixed seed triggers the identical fault
// sequence every time.
//
// When the injector is disarmed (the default, and the only state
// production ever runs in) an injection point costs one relaxed atomic
// load and a predicted-not-taken branch — nothing else. Defining
// SAMS_FAULT_DISABLED compiles every point out entirely.
//
// Point naming convention: <subsystem>.<operation>.<site>, e.g.
// "mfs.nwrite.shared.after_data", "dnsbl.query.<zone>",
// "mta.worker.after_recv". DESIGN.md §7 lists every wired point.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/result.h"
#include "util/rng.h"

namespace sams::fault {

#if defined(SAMS_FAULT_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

enum class Action {
  kError,  // return the configured Error from the injection site
  kDelay,  // sleep delay_ms on the hitting thread, then continue
  kCrash,  // one-shot error-return simulating a process death here
};

struct Policy {
  Action action = Action::kError;
  util::ErrorCode code = util::ErrorCode::kUnavailable;
  std::string message = "injected fault";
  int delay_ms = 0;
  double probability = 1.0;  // per-hit trigger chance (seeded RNG)
  int skip = 0;              // let this many hits pass first
  int max_triggers = -1;     // -1 = unlimited; kCrash forces 1
};

class Injector {
 public:
  // The process-wide injector every SAMS_FAULT_POINT consults.
  static Injector& Global();

  // The only cost an injection point pays while disarmed.
  static bool ArmedFast() {
    return armed_.load(std::memory_order_relaxed);
  }

  // Arms the injector: clears all points/counters and reseeds the RNG.
  // Chaos runs with the same seed and policy set fire identically.
  void Arm(std::uint64_t seed);

  // Disarms and clears every policy and counter (read stats first).
  void Disarm();

  // Installs/replaces the policy for a point (effective while armed).
  void Set(const std::string& point, Policy policy);
  void Clear(const std::string& point);

  // Called by SAMS_FAULT_POINT. Returns the injected error, or OK.
  // Hits on points with no policy are still counted while armed, so
  // coverage tests can assert that sites stayed wired.
  util::Error Hit(const char* point);

  std::uint64_t hits(const std::string& point) const;
  std::uint64_t triggers(const std::string& point) const;

  // Publishes sams_fault_triggers_total{point=...} counters. The
  // registry must outlive the injector's armed phase.
  void BindMetrics(obs::Registry& registry);

 private:
  struct State {
    Policy policy;
    bool has_policy = false;
    std::uint64_t hits = 0;
    std::uint64_t triggers = 0;
    int skipped = 0;
  };

  inline static std::atomic<bool> armed_{false};

  mutable std::mutex mutex_;
  std::unordered_map<std::string, State> points_;
  util::Rng rng_{1};
  obs::Registry* registry_ = nullptr;
};

// RAII arm/disarm for tests: arms on construction, disarms (clearing
// all policies) on destruction.
class ScopedArm {
 public:
  explicit ScopedArm(std::uint64_t seed) { Injector::Global().Arm(seed); }
  ~ScopedArm() { Injector::Global().Disarm(); }
  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;
};

#if defined(SAMS_FAULT_DISABLED)

#define SAMS_FAULT_ERROR(name) (::sams::util::OkError())
#define SAMS_FAULT_POINT(name) \
  do {                         \
  } while (0)

#else

// Evaluates the point and yields the injected Error (OK when idle);
// for sites that need custom handling (e.g. treat as a DNS timeout).
#define SAMS_FAULT_ERROR(name)                       \
  (::sams::fault::Injector::ArmedFast()              \
       ? ::sams::fault::Injector::Global().Hit(name) \
       : ::sams::util::OkError())

// Early-returns the injected error. Usable in any function returning
// util::Error or util::Result<T>.
#define SAMS_FAULT_POINT(name)                             \
  do {                                                     \
    if (::sams::fault::Injector::ArmedFast()) {            \
      ::sams::util::Error sams_fault_err_ =                \
          ::sams::fault::Injector::Global().Hit(name);     \
      if (!sams_fault_err_.ok()) return sams_fault_err_;   \
    }                                                      \
  } while (0)

#endif

}  // namespace sams::fault
