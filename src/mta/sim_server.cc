#include "mta/sim_server.h"

#include <utility>

#include "util/logging.h"

namespace sams::mta {

using trace::SessionKind;

SimMailServer::SimMailServer(sim::Machine& machine, SimServerConfig cfg,
                             mfs::SimMailStore& store,
                             dnsbl::Resolver* resolver)
    : machine_(machine), cfg_(cfg), store_(store), resolver_(resolver) {
  SAMS_CHECK(cfg_.process_limit >= 1);
}

void SimMailServer::BindObservability(obs::Registry& registry,
                                      obs::TraceSink* sink) {
  trace_ = sink;
  const obs::Labels arch = {{"arch", cfg_.hybrid ? "hybrid" : "vanilla"}};
  auto* started = &registry.GetCounter("sams_smtp_connections_total",
                                       "client connections accepted", arch);
  auto* closed = &registry.GetCounter("sams_smtp_connections_closed_total",
                                      "sessions torn down", arch);
  auto* mails = &registry.GetCounter("sams_smtp_mails_delivered_total",
                                     "mails accepted and made durable", arch);
  auto* mailbox = &registry.GetCounter(
      "sams_smtp_mailbox_deliveries_total",
      "mailbox writes (mails x valid recipients)", arch);
  auto* bounces = &registry.GetCounter(
      "sams_smtp_bounce_sessions_total",
      "sessions with zero valid recipients (all-RCPT reject)", arch);
  auto* unfinished = &registry.GetCounter(
      "sams_smtp_unfinished_sessions_total",
      "sessions abandoned after HELO without sending mail", arch);
  auto* rejects = &registry.GetCounter(
      "sams_smtp_blacklist_rejects_total",
      "connections 554-rejected on the DNSBL verdict", arch);
  auto* rep_rejects = &registry.GetCounter(
      "sams_smtp_rep_rejects_total",
      "connections 554-rejected by the reputation gate", arch);
  auto* forks = &registry.GetCounter("sams_smtp_forks_total",
                                     "smtpd processes forked", arch);
  auto* delegations = &registry.GetCounter(
      "sams_smtp_delegations_total",
      "fork-after-trust handoffs from master to worker", arch);
  auto* backlogged = &registry.GetCounter(
      "sams_smtp_backlog_enqueued_total",
      "connections that waited for a process/socket slot", arch);
  auto* busy = &registry.GetGauge("sams_smtp_busy_workers",
                                  "smtpd workers mid-session", arch);
  auto* backlog_depth = &registry.GetGauge(
      "sams_smtp_backlog_depth", "connections awaiting a worker", arch);
  auto* delegate_depth = &registry.GetGauge(
      "sams_smtp_delegate_queue_depth",
      "delegated tasks parked in worker socket buffers", arch);
  auto* master_conns = &registry.GetGauge(
      "sams_smtp_master_connections",
      "connections held in the hybrid master's socket list", arch);
  registry.AddCollector([this, started, closed, mails, mailbox, bounces,
                         unfinished, rejects, rep_rejects, forks, delegations,
                         backlogged, busy, backlog_depth, delegate_depth,
                         master_conns] {
    started->Overwrite(metrics_.connections_started);
    closed->Overwrite(metrics_.connections_closed);
    mails->Overwrite(metrics_.mails_delivered);
    mailbox->Overwrite(metrics_.mailbox_deliveries);
    bounces->Overwrite(metrics_.bounce_sessions);
    unfinished->Overwrite(metrics_.unfinished_sessions);
    rejects->Overwrite(metrics_.blacklist_rejects);
    rep_rejects->Overwrite(metrics_.rep_rejects);
    forks->Overwrite(metrics_.forks);
    delegations->Overwrite(metrics_.delegations);
    backlogged->Overwrite(metrics_.backlog_enqueued);
    busy->Set(static_cast<double>(busy_workers_));
    backlog_depth->Set(static_cast<double>(backlog_.size()));
    delegate_depth->Set(static_cast<double>(delegate_queue_.size()));
    master_conns->Set(static_cast<double>(master_connections_));
  });
}

void SimMailServer::Connect(const trace::SessionSpec& spec, SessionDone done) {
  ++metrics_.connections_started;
  Session session{spec, std::move(done), kMasterPid, 0, {}};
  if (trace_ != nullptr) {
    session.span = obs::SessionSpan(trace_, metrics_.connections_started,
                                    obs::Stage::kAccept, NowNs());
  }
  // Client SYN travels to the server; the master accepts.
  machine_.net().Send(64, [this, session = std::move(session)]() mutable {
    machine_.cpu().Submit(
        kMasterPid, cfg_.costs.accept,
        [this, session = std::move(session)]() mutable {
          if (cfg_.hybrid) {
            HybridAdmit(std::move(session));
          } else {
            VanillaAssign(std::move(session));
          }
        });
  });
}

void SimMailServer::Close(Session session, bool delivered) {
  ++metrics_.connections_closed;
  session.span.Close(NowNs());
  const int pid = session.pid;
  SessionDone done = std::move(session.done);
  if (cfg_.hybrid) {
    if (pid != kMasterPid) HybridWorkerFreed(pid);
    --master_connections_;
    if (!accept_backlog_.empty()) {
      Session next = std::move(accept_backlog_.front());
      accept_backlog_.pop_front();
      HybridAdmit(std::move(next));
    }
  } else {
    WorkerFreed(pid);
  }
  if (done) done(delivered);
}

void SimMailServer::StepThenRtt(SimTime cpu_cost, Session session,
                                std::function<void(Session)> next) {
  const int pid = session.pid;
  // Dispatch overhead: a full smtpd command cycle for a dedicated
  // process, or one event-loop dispatch for the hybrid master.
  const SimTime dispatch = (cfg_.hybrid && pid == kMasterPid)
                               ? cfg_.costs.master_event
                               : cfg_.costs.command;
  machine_.cpu().Submit(
      pid, dispatch + cpu_cost,
      [this, session = std::move(session), next = std::move(next)]() mutable {
        machine_.sim().After(
            machine_.net().Rtt(),
            [session = std::move(session), next = std::move(next)]() mutable {
              next(std::move(session));
            });
      });
}

void SimMailServer::RunDnsblCheck(Session session,
                                  std::function<void(Session, bool)> next) {
  if (resolver_ == nullptr) {
    next(std::move(session), false);
    return;
  }
  session.span.Enter(obs::Stage::kDnsbl, NowNs());
  // Cache state advances on the *trace's* clock, not the accelerated
  // experiment clock: the paper emulates DNSBL caching with a 24 h TTL
  // over the two-month trace and replays the resulting hit/miss
  // sequence while offering connections at the driver's rate (§7.2).
  const auto outcome =
      resolver_->Lookup(session.spec.client_ip, session.spec.arrival);
  auto resume = [this, session = std::move(session), next = std::move(next),
                 outcome]() mutable {
    if (outcome.dns_queries > 0) {
      // Resolver CPU: sockets, sends, receives, parsing, cache insert.
      const int pid = session.pid;
      machine_.cpu().Submit(
          pid, cfg_.costs.dns_round_cpu,
          [session = std::move(session), next = std::move(next),
           outcome]() mutable {
            next(std::move(session), outcome.blacklisted);
          });
    } else {
      next(std::move(session), outcome.blacklisted);
    }
  };
  if (outcome.latency.nanos() > 0) {
    // The session waits for the slowest list; in the vanilla server
    // this holds an smtpd process slot (pid stays busy-but-idle), in
    // the hybrid master other sessions keep being served meanwhile.
    machine_.sim().After(outcome.latency, std::move(resume));
  } else {
    resume();
  }
}

// --- vanilla ----------------------------------------------------------

void SimMailServer::VanillaAssign(Session session) {
  if (!free_workers_.empty()) {
    session.pid = free_workers_.back();
    free_workers_.pop_back();
    ++busy_workers_;
    RunSmtpDialog(std::move(session));
    return;
  }
  if (spawned_workers_ < cfg_.process_limit) {
    const int pid = ++spawned_workers_;
    ++metrics_.forks;
    ++busy_workers_;
    machine_.cpu().Fork(kMasterPid,
                        [this, session = std::move(session), pid]() mutable {
                          session.pid = pid;
                          RunSmtpDialog(std::move(session));
                        });
    return;
  }
  ++metrics_.backlog_enqueued;
  backlog_.push_back(std::move(session));
}

void SimMailServer::WorkerFreed(int pid) {
  --busy_workers_;
  if (!backlog_.empty()) {
    Session next = std::move(backlog_.front());
    backlog_.pop_front();
    next.pid = pid;
    ++busy_workers_;
    RunSmtpDialog(std::move(next));
    return;
  }
  free_workers_.push_back(pid);
}

// --- the SMTP dialog (shared; pid decides the architecture) -----------

void SimMailServer::RunSmtpDialog(Session session) {
  // DNSBL verdict first (postfix checks the client at connect time),
  // then the 220 banner goes out and the client answers with HELO.
  RunDnsblCheck(
      std::move(session), [this](Session s, bool blacklisted) mutable {
        // Pre-trust reputation gate: the /24's accumulated history (plus
        // the DNSBL flag) can 554 the client at the banner, so a
        // misbehaving network stops consuming dialog cycles — and, in
        // the hybrid server, stops reaching delegation — after its
        // first few strikes. Evaluated before the legacy binary check
        // so a listed client still reinforces its bucket.
        bool rep_reject = false;
        if (cfg_.reputation != nullptr) {
          rep_reject = cfg_.reputation
                           ->GateOnHistory(s.spec.client_ip, blacklisted,
                                           NowNs())
                           .verdict == rep::Verdict::kReject;
        }
        const bool dnsbl_reject = blacklisted && cfg_.reject_blacklisted;
        if (dnsbl_reject || rep_reject) {
          if (dnsbl_reject) {
            ++metrics_.blacklist_rejects;
          } else {
            ++metrics_.rep_rejects;
          }
          s.span.Enter(obs::Stage::kBounce, NowNs());
          // 554 banner, client gives up: one reply + RTT + teardown.
          StepThenRtt(SimTime{}, std::move(s), [this](Session s2) {
            Close(std::move(s2), false);
          });
          return;
        }
        // Banner -> HELO arrives.
        s.span.Enter(obs::Stage::kBanner, NowNs());
        StepThenRtt(SimTime{}, std::move(s), [this](Session s2) {
          // HELO processing.
          s2.span.Enter(obs::Stage::kHelo, NowNs());
          if (s2.spec.kind == SessionKind::kUnfinished) {
            ++metrics_.unfinished_sessions;
            if (cfg_.reputation != nullptr) {
              // An abandoned dialog is hostile evidence (§4.2: most
              // spam sessions never finish); charge the /24.
              cfg_.reputation->RecordOutcome(
                  s2.spec.client_ip, cfg_.reputation->config().hostile_delta,
                  NowNs());
            }
            s2.span.Enter(obs::Stage::kUnfinished, NowNs());
            const SimTime hold = cfg_.unfinished_hold;
            StepThenRtt(SimTime{}, std::move(s2), [this, hold](Session s3) {
              machine_.sim().After(hold, [this, s3 = std::move(s3)]() mutable {
                RunQuit(std::move(s3), false);
              });
            });
            return;
          }
          StepThenRtt(SimTime{}, std::move(s2), [this](Session s3) {
            // MAIL FROM processing.
            s3.span.Enter(obs::Stage::kMail, NowNs());
            StepThenRtt(SimTime{}, std::move(s3), [this](Session s4) {
              const int n_rcpts = s4.spec.n_rcpts;
              s4.span.Enter(obs::Stage::kRcpt, NowNs());
              RunRcptPhase(std::move(s4), n_rcpts);
            });
          });
        });
      });
}

void SimMailServer::RunRcptPhase(Session session, int remaining) {
  if (remaining > 0) {
    // The master delegates as soon as a recipient is confirmed valid
    // (fork-after-trust, §5.1): with n_valid > 0 the first RCPT
    // processed is a valid one, so the handoff happens here and the
    // worker handles the remaining RCPT commands.
    const bool delegate_now = cfg_.hybrid && session.pid == kMasterPid &&
                              session.spec.n_valid_rcpts > 0;
    StepThenRtt(cfg_.costs.rcpt_check, std::move(session),
                [this, remaining, delegate_now](Session s) {
                  if (delegate_now) {
                    HybridDelegate(std::move(s), remaining - 1);
                  } else {
                    RunRcptPhase(std::move(s), remaining - 1);
                  }
                });
    return;
  }
  if (session.spec.n_valid_rcpts == 0) {
    ++metrics_.bounce_sessions;
    if (cfg_.reputation != nullptr) {
      // All recipients bounced: dictionary-attack evidence.
      cfg_.reputation->RecordOutcome(
          session.spec.client_ip, cfg_.reputation->config().hostile_delta,
          NowNs());
    }
    session.span.Enter(obs::Stage::kBounce, NowNs());
    RunQuit(std::move(session), false);
    return;
  }
  RunDataPhase(std::move(session));
}

void SimMailServer::RunDataPhase(Session session) {
  // DATA command -> 354; then the body arrives (one-way + transfer).
  session.span.Enter(obs::Stage::kData, NowNs());
  const int pid = session.pid;
  machine_.cpu().Submit(
      pid, cfg_.costs.command, [this, session = std::move(session)]() mutable {
        const std::uint64_t bytes = session.spec.size_bytes;
        machine_.net().Send(bytes, [this, session = std::move(session)]() mutable {
          const SimTime body_cpu =
              cfg_.costs.data_fixed +
              cfg_.costs.per_byte *
                  static_cast<std::int64_t>(session.spec.size_bytes) +
              store_.DeliveryCpu(session.spec.size_bytes,
                                 session.spec.n_valid_rcpts);
          const int p = session.pid;
          machine_.cpu().Submit(
              p, body_cpu, [this, session = std::move(session)]() mutable {
                // Store + queue manager + local delivery.
                const int nrcpts = session.spec.n_valid_rcpts;
                const std::uint64_t sz = session.spec.size_bytes;
                session.span.Enter(obs::Stage::kStoreWrite, NowNs());
                auto after_store = [this,
                                    session = std::move(session)]() mutable {
                  session.span.Enter(obs::Stage::kDelivery, NowNs());
                  const int p2 = session.pid;
                  machine_.cpu().Submit(
                      p2, cfg_.costs.delivery_fixed,
                      [this, session = std::move(session)]() mutable {
                        ++metrics_.mails_delivered;
                        metrics_.mailbox_deliveries += static_cast<
                            std::uint64_t>(session.spec.n_valid_rcpts);
                        if (cfg_.reputation != nullptr) {
                          // Delivered ham earns the /24 credit back.
                          cfg_.reputation->RecordOutcome(
                              session.spec.client_ip,
                              cfg_.reputation->config().ham_delta, NowNs());
                        }
                        // 250 Ok -> client QUITs.
                        machine_.sim().After(
                            machine_.net().Rtt(),
                            [this, session = std::move(session)]() mutable {
                              RunQuit(std::move(session), true);
                            });
                      });
                };
                store_.Deliver(sz, nrcpts, std::move(after_store));
              });
        });
      });
}

void SimMailServer::RunQuit(Session session, bool delivered) {
  // QUIT processing + 221 reply; connection tears down.
  session.span.Enter(obs::Stage::kQuit, NowNs());
  const int pid = session.pid;
  const SimTime dispatch = (cfg_.hybrid && pid == kMasterPid)
                               ? cfg_.costs.master_event
                               : cfg_.costs.command;
  machine_.cpu().Submit(pid, dispatch,
                        [this, session = std::move(session), delivered]() mutable {
                          Close(std::move(session), delivered);
                        });
}

// --- hybrid -----------------------------------------------------------

void SimMailServer::HybridAdmit(Session session) {
  if (master_connections_ >= cfg_.master_connection_limit) {
    ++metrics_.backlog_enqueued;
    accept_backlog_.push_back(std::move(session));
    return;
  }
  ++master_connections_;
  session.pid = kMasterPid;
  RunSmtpDialog(std::move(session));
}

void SimMailServer::HybridStartWorker(Session session, int remaining_rcpts) {
  if (remaining_rcpts > 0) {
    session.span.Enter(obs::Stage::kRcpt, NowNs());
    RunRcptPhase(std::move(session), remaining_rcpts);
  } else {
    RunDataPhase(std::move(session));
  }
}

void SimMailServer::HybridDelegate(Session session, int remaining_rcpts) {
  session.span.Enter(obs::Stage::kHandoff, NowNs());
  machine_.cpu().Submit(
      kMasterPid, cfg_.costs.delegate,
      [this, session = std::move(session), remaining_rcpts]() mutable {
        ++metrics_.delegations;
        if (!free_workers_.empty()) {
          session.pid = free_workers_.back();
          free_workers_.pop_back();
          ++busy_workers_;
          HybridStartWorker(std::move(session), remaining_rcpts);
          return;
        }
        if (spawned_workers_ < cfg_.process_limit) {
          const int pid = ++spawned_workers_;
          ++metrics_.forks;
          ++busy_workers_;
          machine_.cpu().Fork(
              kMasterPid,
              [this, session = std::move(session), pid, remaining_rcpts]() mutable {
                session.pid = pid;
                HybridStartWorker(std::move(session), remaining_rcpts);
              });
          return;
        }
        // All workers busy: the task sits in a worker's socket buffer
        // (vector-send batching). The buffer bound is
        // workers * delegate_queue_per_worker; beyond it the master
        // stalls the connection until a slot frees (natural throttle,
        // §5.3) — modeled as staying queued either way, with the
        // overflow counted.
        if (delegate_queue_.size() >=
            static_cast<std::size_t>(cfg_.process_limit) *
                static_cast<std::size_t>(cfg_.delegate_queue_per_worker)) {
          ++metrics_.backlog_enqueued;
        }
        session.pending_rcpts = remaining_rcpts;
        delegate_queue_.push_back(std::move(session));
      });
}

void SimMailServer::HybridWorkerFreed(int pid) {
  --busy_workers_;
  if (!delegate_queue_.empty()) {
    Session next = std::move(delegate_queue_.front());
    delegate_queue_.pop_front();
    const int remaining = next.pending_rcpts;
    next.pid = pid;
    ++busy_workers_;
    HybridStartWorker(std::move(next), remaining);
    return;
  }
  free_workers_.push_back(pid);
}

}  // namespace sams::mta
