// SmtpServer — the REAL mail server: genuine TCP sockets, both
// concurrency architectures of the paper, delivering into any real
// MailStore (including MFS).
//
//   kThreadPerConnection — the conventional architecture (Figure 6).
//     Each accepted connection gets a dedicated thread running the
//     blocking SMTP dialog end to end. (Threads stand in for postfix's
//     per-connection processes: the concurrency *structure* — one
//     execution context per connection for the whole session — is
//     identical; only address-space isolation is relaxed, which this
//     in-container reproduction documents in DESIGN.md.)
//
//   kForkAfterTrust — the paper's hybrid architecture (Figure 7),
//     sharded. The pre-trust master is `num_shards` per-core reactors:
//     each shard owns an SO_REUSEPORT listener (the kernel
//     load-balances SYNs across them) and runs every early dialog
//     (banner → HELO → MAIL → RCPT) non-blocking in its own epoll
//     loop. When a session confirms its first valid RCPT, the shard
//     serializes the session state and passes the client socket to an
//     smtpd worker of the shared pool over a UNIX-domain socketpair
//     using a real sendmsg/SCM_RIGHTS descriptor transfer (§5.3); the
//     worker resumes the session with blocking I/O and performs the
//     delivery. Bounces and unfinished sessions live and die inside
//     their shard. When SO_REUSEPORT is unavailable the server falls
//     back to a single listener plus an accept thread that round-robins
//     accepted descriptors into the shard loops. num_shards == 1
//     reproduces the paper's single-master baseline exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dnsbl/async_pipeline.h"
#include "mfs/store.h"
#include "mta/queue_manager.h"
#include "mta/recipient_db.h"
#include "net/buffer_pool.h"
#include "net/event_loop.h"
#include "net/tcp.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "rep/reputation.h"
#include "smtp/server_session.h"
#include "util/ipv4.h"
#include "util/rng.h"

namespace sams::mta {

enum class Architecture { kThreadPerConnection, kForkAfterTrust };

struct RealServerConfig {
  smtp::SessionConfig session;
  Architecture architecture = Architecture::kThreadPerConnection;
  int worker_count = 4;        // fork-after-trust smtpd workers
  // Fork-after-trust pre-trust reactors. Spam traffic is dominated by
  // huge numbers of short-lived, mostly-rejected connections, so the
  // cheap pre-trust stage is the first to saturate a core; one shard
  // per core lifts that ceiling. 1 = the paper's single master.
  int num_shards = 1;
  // Readiness backend for the shard reactors (--io-backend): epoll is
  // the portable default every paper-figure bench runs on; kIoUring
  // fails Start() when the ring is unavailable; kAuto probes io_uring
  // and falls back to epoll (old kernel, seccomp, rlimits).
  net::IoBackendKind io_backend = net::IoBackendKind::kEpoll;
  // Zero-copy DATA path (DESIGN.md §14): reads land in pooled receive
  // buffers, the dot-stuff decoder emits spans over them, and the MFS
  // delivery stages those spans straight into one vectored write.
  // false restores the seed's copy path (the bench baseline).
  bool pooled_data_path = true;
  // Blocking smtpd workers: total wall-clock cap on a session after
  // delegation (0 = off). recv_timeout_ms only bounds silence between
  // reads; a wedged client trickling one byte per timeout would
  // otherwise pin its worker forever.
  int worker_session_deadline_ms = 0;
  int recv_timeout_ms = 30'000;
  std::uint16_t port = 0;      // 0 = ephemeral
  // Fork-after-trust master only: postscreen-style pregreet test. When
  // > 0, the master holds the 220 banner for this long after accept; a
  // client that speaks first is a spam bot by protocol (RFC 5321
  // requires waiting for the banner) and is rejected with 554 without
  // ever reaching an smtpd worker. This is the production descendant
  // of the paper's idea (postfix postscreen implements the same trick).
  int pregreet_delay_ms = 0;
  // Post-DATA content check (e.g. filter::SpamFilter::Classify): return
  // false to reject the mail with 554. Runs inside the smtpd worker in
  // both architectures, preserving the §5.2 isolation argument. May be
  // called concurrently; must be thread-safe.
  std::function<bool(const smtp::Envelope&)> content_check;
  // When non-empty, accepted mail goes through a durable QueueManager
  // (Figure 2's incoming queue) instead of being delivered inline by
  // the smtpd worker: the 250 ack then means "safely spooled", exactly
  // postfix's contract.
  std::string spool_dir;

  // --- robustness knobs (0 = off) ------------------------------------
  // SO_SNDTIMEO on client sockets: a peer that stops draining its
  // receive window cannot park a worker in a blocking reply write.
  int send_timeout_ms = 30'000;
  // Fork-after-trust shards: reap a parked connection with 421 after
  // this much inactivity (slow-loris defense — an untrusted session
  // may not squat in a shard's epoll set indefinitely)...
  int master_idle_timeout_ms = 0;
  // ...and regardless of activity, cap its total pre-trust lifetime.
  int master_session_deadline_ms = 0;
  // Overload gate: beyond this many concurrently open sessions, new
  // connections are shed immediately with 421 (bounded work, fast
  // failure — the client retries later, per SMTP semantics).
  int max_inflight_sessions = 0;
  // Per-shard overload gate: a single shard may not hold more than
  // this many open pre-trust sessions, so one hot shard sheds before
  // it can starve its reactor (0 = no per-shard cap).
  int max_sessions_per_shard = 0;
  // Stall watchdog (DESIGN.md §11): fork-after-trust shards snapshot
  // every session stuck in one pipeline stage longer than this into
  // the event log (once per session), with its span history. Needs
  // BindEventLog; unlike the idle reaper above it only OBSERVES — the
  // session is left alone so the stall can be diagnosed live.
  int stall_watchdog_ms = 0;
  // SO_SNDBUF (bytes) on accepted client sockets in the fork-after-trust
  // shards; 0 keeps the kernel default. Tests shrink it so a slow-talker
  // peer fills its receive window after a handful of replies and the
  // partial-write continuation path actually runs.
  int client_sndbuf = 0;
  // listen(2) backlog on every listener. The default suits interactive
  // tests; a saturation storm connecting thousands of clients in one
  // burst needs the accept queue deeper than 128 or the ramp
  // serializes on SYN retransmits (clamped by net.core.somaxconn).
  int listen_backlog = 128;

  // --- async DNSBL (fork-after-trust master, DESIGN.md §10) ----------
  // When enabled, each shard runs a dnsbl::AsyncLookupPipeline on its
  // reactor loop: the lookup launches at accept, the DNS RTT overlaps
  // the banner→HELO→MAIL dialog, and the verdict gates the first RCPT
  // — a blacklisted client gets 554 before any fork/delegation (§4.3).
  dnsbl::AsyncDnsblConfig dnsbl;
  // false = blocking baseline: the lookup launches only when the RCPT
  // gate needs the verdict (what a synchronous resolver call would
  // cost, measured with the same machinery). Benchmarks only.
  bool dnsbl_overlap = true;
  // Test seam: maps the peer address string to the address whose /25
  // is looked up. Benches connect from 127.0.0.1 but synthesize
  // distinct client IPs here; production leaves it unset (peer IP).
  // The reputation engine scores the same mapped address, so one seam
  // serves both subsystems.
  std::function<util::Ipv4(const std::string& peer_ip)> dnsbl_ip_mapper;

  // --- pre-trust reputation engine (fork-after-trust, DESIGN.md §12) -
  // When reputation.enabled, the first-RCPT gate stops being a binary
  // DNSBL check: the shard folds the DNSBL verdict, dialog anomalies
  // (pregreet, pipelining, HELO shape, command errors) and the per-/24
  // history into a weighted score, and answers accept / 450 greylist /
  // 554 reject. Pregreeters are scored instead of instantly reaped:
  // the banner is still sent and the session lives until the gate,
  // where the pregreet feature usually pushes it over a threshold —
  // one knob trades postscreen's hair-trigger for evidence.
  rep::RepConfig reputation;
};

struct RealServerStats {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> mails_delivered{0};
  std::atomic<std::uint64_t> mailbox_deliveries{0};
  std::atomic<std::uint64_t> rejected_rcpts{0};
  std::atomic<std::uint64_t> content_rejects{0};
  std::atomic<std::uint64_t> pregreet_rejects{0};
  std::atomic<std::uint64_t> delegations{0};       // fork-after-trust
  std::atomic<std::uint64_t> master_closed{0};     // sessions that never
                                                   // left their shard
  std::atomic<std::uint64_t> delivery_errors{0};
  std::atomic<std::uint64_t> idle_reaped{0};       // shard 421s (idle/deadline)
  std::atomic<std::uint64_t> overload_sheds{0};    // 421s at accept
  std::atomic<std::uint64_t> worker_deaths{0};     // dead delegation channels
  std::atomic<std::uint64_t> requeued_delegations{0};  // retried on live worker
  std::atomic<std::uint64_t> accept_errors{0};     // accept() failures
  std::atomic<std::uint64_t> dnsbl_rejects{0};     // 554 at the RCPT gate
  std::atomic<std::uint64_t> dnsbl_deferred{0};    // RCPTs that waited on DNS
  std::atomic<std::uint64_t> stalled_sessions{0};  // watchdog detections
  std::atomic<std::uint64_t> rep_rejects{0};       // 554 by reputation score
  std::atomic<std::uint64_t> rep_greylisted{0};    // 450 by reputation score
  std::atomic<std::uint64_t> pregreet_scored{0};   // early talkers scored
                                                   // instead of reaped
  std::atomic<std::uint64_t> reply_backpressured{0};  // reply sends that hit
                                                      // EAGAIN and buffered
  std::atomic<std::uint64_t> reply_overflow_closed{0};  // sessions aborted:
                                                        // outbound buffer cap
  std::atomic<std::uint64_t> accept_redrains{0};   // EMFILE-stalled accept
                                                   // queues re-drained after
                                                   // a session freed an fd
  std::atomic<std::uint64_t> worker_read_timeouts{0};  // blocking sessions
                                                       // 421ed on read
                                                       // timeout/deadline
};

// One row of SmtpServer::Health() — the /healthz contract: every
// subsystem the server depends on, with a human-readable detail line
// when it is degraded.
struct SubsystemHealth {
  std::string name;
  bool ok = true;
  std::string detail;
};

class SmtpServer {
 public:
  // The store must outlive the server. Deliveries are serialized with
  // an internal mutex (stores are single-threaded by contract).
  SmtpServer(RealServerConfig cfg, RecipientDb recipients,
             mfs::MailStore& store);
  ~SmtpServer();

  SmtpServer(const SmtpServer&) = delete;
  SmtpServer& operator=(const SmtpServer&) = delete;

  // Binds 127.0.0.1 and starts the server threads; returns the port.
  util::Result<std::uint16_t> Start();

  // Stops all threads and closes all sockets. Idempotent.
  void Stop();

  // Graceful shutdown: stop accepting new connections, wait up to
  // `grace_ms` for in-flight sessions to finish, flush the spool queue
  // (every acked mail reaches its mailbox), then Stop(). Returns the
  // number of sessions still open when the grace period expired.
  int Drain(int grace_ms);

  // Concurrently open sessions (accepted, not yet finished).
  int inflight() const { return inflight_.load(std::memory_order_relaxed); }

  // --- shard introspection (fork-after-trust) ------------------------
  // Number of pre-trust reactor shards actually running (0 before
  // Start(), and always 0 for kThreadPerConnection).
  int num_shards() const { return static_cast<int>(shards_.size()); }
  // True when SO_REUSEPORT was unavailable and the server fell back to
  // a single listener with round-robin fd handoff into the shards.
  bool handoff_fallback() const { return handoff_fallback_; }
  // Open pre-trust sessions per shard (index-aligned with shard ids).
  std::vector<int> ShardSessions() const;
  // Connections ever accepted into each shard.
  std::vector<std::uint64_t> ShardAccepted() const;
  // Early talkers detected per shard (rejected or scored, by mode).
  std::vector<std::uint64_t> ShardPregreets() const;
  // Live thread handles held for thread-per-connection sessions; the
  // reaper keeps this bounded by open connections, not by connection
  // count since Start() (the seed leaked one handle per connection).
  int ConnThreadHandles() const;

  // Publishes the server's, store's, and (once started) queue's and
  // event loop's instruments into `registry`; when `sink` is non-null,
  // every session records per-stage spans on the monotonic clock. Call
  // before Start(); registry and sink must outlive the server.
  void BindObservability(obs::Registry& registry, obs::TraceSink* sink);

  // Routes session-outcome and operational records (worker death, shed,
  // stall, queue recovery) into `log`. Call before Start(); the log
  // must outlive the server. Null detaches.
  void BindEventLog(obs::EventLog* log) { event_log_ = log; }

  // Per-subsystem readiness for /healthz: server running, shard
  // reactors up, worker pool alive, store volume writable, spool queue
  // running, DNSBL pipelines bound. Thread-safe.
  std::vector<SubsystemHealth> Health() const;

  // Delegation channels still open (fork-after-trust); a dead worker
  // retires its channel, so live < worker_count means deaths happened.
  int LiveWorkers() const;

  const RealServerStats& stats() const { return stats_; }

  // Shared async-DNSBL service (cache + singleflight + counters);
  // nullptr unless cfg.dnsbl.enabled.
  const dnsbl::AsyncDnsblService* dnsbl_service() const {
    return dnsbl_service_.get();
  }

  // Shared pre-trust reputation engine (history + greylist stores);
  // nullptr unless cfg.reputation.enabled. Thread-safe; the admin
  // plane snapshots it live.
  rep::ReputationEngine* reputation_engine() const {
    return rep_engine_.get();
  }

 private:
  struct MasterConn;  // fork-after-trust per-connection state
  struct Shard;       // one pre-trust reactor

  void AcceptLoop();                       // thread-per-connection
  void ReapConnThreads();                  // joins finished conn threads
  void HandleConnection(std::uint64_t conn_id, util::UniqueFd fd,
                        std::string peer_ip);
  void ShardLoop(Shard& shard);            // fork-after-trust reactor
  void HandoffAcceptLoop();                // single-listener fallback
  void WorkerLoop(int channel_fd);  // takes ownership of channel_fd
  void FinishSession(smtp::ServerSession& session, int fd);
  bool DeliverEnvelope(smtp::Envelope&& envelope);
  // Final first-RCPT verdict once the DNSBL answer (or its absence) is
  // in hand: binary DNSBL gate when reputation is off, weighted
  // score → accept/greylist/reject when on. Counts stats; runs on the
  // owning shard's loop thread.
  smtp::RcptGateDecision GateVerdict(MasterConn& conn,
                                     const std::string& rcpt);
  // Reply-path backpressure (shard reactors only): try the wire, then
  // park the remainder in the connection's bounded outbound buffer and
  // arm EPOLLOUT. False = peer dead or buffer cap blown — the session
  // aborts via the send hook's peer_dead contract. Runs on the owning
  // shard's loop thread.
  bool SendOrBuffer(net::EventLoop& loop, int fd, MasterConn& conn,
                    std::string bytes);
  // Drains the buffered reply bytes after an EPOLLOUT edge; disarms
  // write interest once empty. False = hard send error (peer gone).
  bool FlushOutbuf(net::EventLoop& loop, int fd, MasterConn& conn);
  // Round-robins `payload` + the client socket over the live workers,
  // retiring dead channels (EPIPE) and retrying on the next one.
  // Thread-safe: shards delegate concurrently. False = no live worker.
  bool DelegateToWorker(int fd, const std::string& payload);
  // Overload gate: true = session admitted (inflight_ counted); false =
  // the connection was shed with 421 and must be closed by the caller.
  bool AdmitSession(int fd);
  void SessionDone() { inflight_.fetch_sub(1, std::memory_order_relaxed); }
  // Errno-aware accept-failure accounting; returns the backoff (ms)
  // the caller should sleep before retrying (0 = retry immediately).
  int OnAcceptError(int err, int prev_backoff_ms);
  // One "session" event-log record per finished session: verdict,
  // per-stage durations, bytes, shard, peer /24. No-op without an
  // event log.
  void LogSessionOutcome(const smtp::ServerSession& session, int shard,
                         const char* transport);
  // One operational record (worker_death, overload_shed, ...); no-op
  // without an event log.
  void LogOperational(const char* event, obs::EventSeverity severity,
                      std::function<void(obs::EventRecord&)> fill = nullptr);

  RealServerConfig cfg_;
  RecipientDb recipients_;
  mfs::MailStore& store_;
  // Receive-buffer arena for the blocking read loops (workers and
  // thread-per-connection sessions); each shard reactor owns its own
  // arena in its Shard state. Only used when pooled_data_path is set.
  net::BufferPool worker_pool_;
  std::unique_ptr<QueueManager> queue_;  // present when spool_dir set
  std::mutex store_mutex_;
  util::Rng id_rng_{0xD15EA5E};
  std::mutex id_mutex_;

  util::UniqueFd listener_;  // thread-per-connection and handoff fallback
  std::atomic<bool> running_{false};
  std::atomic<bool> accepting_{false};
  std::atomic<int> inflight_{0};

  // thread-per-connection state: live threads keyed by connection id;
  // finished threads enqueue their id for the accept loop to join.
  std::thread accept_thread_;
  mutable std::mutex conn_mutex_;
  std::unordered_map<std::uint64_t, std::thread> conn_threads_;
  std::vector<std::uint64_t> finished_conns_;
  std::uint64_t next_conn_id_ = 0;

  // fork-after-trust state
  std::vector<std::unique_ptr<Shard>> shards_;
  bool handoff_fallback_ = false;
  std::thread handoff_thread_;  // fallback accept thread
  // Guards worker_channels_ + next_worker_; mutable so the const
  // LiveWorkers() health probe can count live channels.
  mutable std::mutex delegate_mutex_;
  std::vector<std::thread> worker_threads_;
  std::vector<util::UniqueFd> worker_channels_;  // shard-side ends
  std::size_t next_worker_ = 0;

  RealServerStats stats_;

  // Async DNSBL: one service shared by every shard's pipeline.
  std::unique_ptr<dnsbl::AsyncDnsblService> dnsbl_service_;

  // Pre-trust reputation: history + greylist stores shared by every
  // shard (internally sharded-mutex, like the DNSBL verdict cache).
  std::unique_ptr<rep::ReputationEngine> rep_engine_;

  // Optional observability (null until BindObservability/BindEventLog).
  obs::Registry* registry_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  obs::EventLog* event_log_ = nullptr;
  // Shards whose async-DNSBL pipeline initialized and is still bound
  // to its reactor loop (the /healthz "dnsbl" probe compares this
  // against num_shards()).
  std::atomic<int> dnsbl_shards_bound_{0};
  obs::Histogram* dnsbl_hidden_ms_ = nullptr;  // DNS RTT hidden by overlap
  obs::Histogram* dnsbl_stall_ms_ = nullptr;   // RCPT wait on the verdict
  std::atomic<std::uint64_t> trace_seq_{0};
};

}  // namespace sams::mta
