// QueueManager — the queueing pipeline of Figure 2 (incoming → active
// → delivered / deferred), for the real server.
//
// postfix never delivers from smtpd directly: cleanup writes the mail
// into the incoming queue (durably), and the queue manager drains it
// into local delivery, deferring failures with backoff. This module
// implements that pipeline:
//
//   * Enqueue() persists the envelope as a spool file and returns —
//     this is the only thing an smtpd worker waits for (the paper's
//     disk-I/O costs of §6 are exactly these spool+mailbox writes);
//   * a queue-manager thread performs store deliveries;
//   * failed deliveries are re-queued with exponential backoff up to a
//     retry cap, then dropped (counted as failed);
//   * on construction the spool directory is recovered, so mail
//     accepted before a crash is not lost.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "mfs/store.h"
#include "obs/metrics.h"
#include "smtp/server_session.h"
#include "util/result.h"
#include "util/rng.h"

namespace sams::mta {

struct QueueConfig {
  std::string spool_dir;
  int max_attempts = 5;
  // First retry delay; doubles per attempt.
  int base_retry_ms = 200;
  // fsync spool files at enqueue time (durability vs throughput).
  bool fsync_spool = true;
  // Eligible mails drained per delivery-loop pass. Each pass stages
  // every mail in the batch and then issues ONE durability barrier
  // (store Commit), so a group-commit store pays its fsyncs once per
  // batch instead of once per mail.
  std::size_t delivery_batch = 16;
};

struct QueueStats {
  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> deferrals{0};   // individual retry events
  std::atomic<std::uint64_t> failed{0};      // dropped after max attempts
  std::atomic<std::uint64_t> recovered{0};   // picked up from spool at start
};

class QueueManager {
 public:
  // The store must outlive the manager.
  QueueManager(QueueConfig cfg, mfs::MailStore& store);
  ~QueueManager();

  QueueManager(const QueueManager&) = delete;
  QueueManager& operator=(const QueueManager&) = delete;

  // Recovers the spool and starts the delivery thread.
  util::Error Start();
  // Drains nothing further; joins the thread. Spooled-but-undelivered
  // mail stays on disk for the next Start (crash-safe by design).
  void Stop();

  // Durably accepts one mail for delivery. Thread-safe.
  util::Error Enqueue(const smtp::Envelope& envelope);

  // Blocks until the queue is momentarily empty (tests/shutdown).
  void Flush();

  const QueueStats& stats() const { return stats_; }
  std::size_t depth() const;

  // Publishes QueueStats counters plus a live queue-depth gauge into
  // `registry`, refreshed at collect time. The registry must outlive
  // the manager.
  void BindMetrics(obs::Registry& registry);

 private:
  struct Item {
    std::string spool_path;
    smtp::Envelope envelope;
    int attempts = 0;
    std::chrono::steady_clock::time_point not_before;
  };

  void DeliveryLoop();
  util::Error WriteSpoolFile(const std::string& path,
                             const smtp::Envelope& envelope);
  static util::Result<smtp::Envelope> ReadSpoolFile(const std::string& path);
  util::Error RecoverSpool();

  QueueConfig cfg_;
  mfs::MailStore& store_;
  util::Rng id_rng_{0x5B001};
  std::uint64_t spool_seq_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Item> queue_;
  bool running_ = false;
  std::size_t in_flight_ = 0;  // items staged in the current batch
  std::thread thread_;

  QueueStats stats_;
};

}  // namespace sams::mta
