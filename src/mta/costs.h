// Calibration constants for the simulated mail server.
//
// Each value is anchored to a quantity the paper reports for its 2007
// testbed (3 GHz Xeon, Table 1):
//   * Vanilla postfix peaks at ~180 mails/s with the process limit at
//     500 under the Univ workload (§3) — the command/data/delivery CPU
//     costs below put the CPU ceiling just above that, and the
//     context-switch pressure term in sim::CpuConfig bends the curve
//     down past the peak.
//   * DNSBL rounds (6 lists queried concurrently, §4.3 + footnote 2)
//     cost both wall-clock latency (the slowest list's reply, modeled
//     by dnsbl::LatencyProfile) and resolver CPU on the mail server —
//     the CPU term is what separates the Figure 14 curves once the
//     server saturates.
//   * The hybrid master's per-event cost is an epoll/select dispatch
//     plus a state-machine step — order tens of microseconds — versus
//     a full scheduler round trip for a dedicated process.
#pragma once

#include "util/time.h"

namespace sams::mta {

using util::SimTime;

struct ServerCosts {
  // Master: accepting a connection (accept(2) + bookkeeping).
  SimTime accept = SimTime::MicrosF(12);
  // smtpd: one full command cycle for a dedicated process — scheduler
  // wakeup, read(2), parse, reply write(2). This is the cost the
  // fork-after-trust master avoids for the early dialog.
  SimTime command = SimTime::MicrosF(100);
  // RCPT validation against the local access database (§2) — an
  // in-memory map probe, paid identically by both architectures.
  SimTime rcpt_check = SimTime::MicrosF(20);
  // smtpd: fixed DATA-phase cost (buffer setup, header checks).
  SimTime data_fixed = SimTime::MicrosF(600);
  // smtpd: per-byte receive + cleanup processing of the body.
  SimTime per_byte = SimTime::Nanos(160);
  // queue manager + local delivery bookkeeping per mail (excluding
  // store I/O, which the sim store charges to the disk).
  SimTime delivery_fixed = SimTime::MicrosF(1200);
  // hybrid master: one event-loop dispatch + FSM step (§5.1).
  SimTime master_event = SimTime::MicrosF(6);
  // hybrid master: delegating a trusted connection (vector send with
  // the task header + SCM_RIGHTS, §5.3).
  SimTime delegate = SimTime::MicrosF(50);
  // resolver CPU for one DNSBL round (6 UDP queries: socket setup,
  // sends, receives, response parsing, cache insertion).
  SimTime dns_round_cpu = SimTime::MicrosF(1030) * 6;
};

}  // namespace sams::mta
