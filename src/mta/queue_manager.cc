#include "mta/queue_manager.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "mta/recipient_db.h"
#include "util/fd.h"
#include "util/logging.h"
#include "util/strings.h"

namespace sams::mta {
namespace {

// Spool format:
//   id=<mail id>
//   ip=<client ip>
//   helo=<helo>
//   from=<reverse path>
//   rcpt=<addr>            (repeated)
//   body=<byte count>
//   <raw body bytes>
std::string SerializeSpool(const mfs::MailId& id,
                           const smtp::Envelope& envelope) {
  std::string out;
  out += "id=" + id.str() + "\n";
  out += "ip=" + envelope.client_ip + "\n";
  out += "helo=" + envelope.helo + "\n";
  out += "from=" + envelope.mail_from.ToString() + "\n";
  for (const smtp::Address& rcpt : envelope.rcpt_to) {
    out += "rcpt=" + rcpt.ToString() + "\n";
  }
  out += "body=" + std::to_string(envelope.body.size()) + "\n";
  out += envelope.body;
  return out;
}

}  // namespace

QueueManager::QueueManager(QueueConfig cfg, mfs::MailStore& store)
    : cfg_(std::move(cfg)), store_(store) {
  SAMS_CHECK(!cfg_.spool_dir.empty()) << "spool_dir required";
}

QueueManager::~QueueManager() { Stop(); }

util::Error QueueManager::WriteSpoolFile(const std::string& path,
                                         const smtp::Envelope& envelope) {
  // The id is embedded in the filename's suffix by the caller; parse-
  // side reads it from the content, so serialize with the same id.
  // (Callers pass the path they derived from the id.)
  const std::size_t dash = path.rfind('-');
  SAMS_CHECK(dash != std::string::npos);
  auto id = mfs::MailId::Parse(path.substr(dash + 1));
  SAMS_CHECK(id.has_value()) << path;
  const std::string payload = SerializeSpool(*id, envelope);
  util::UniqueFd fd(::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0600));
  if (!fd.valid()) {
    return util::IoError("open " + path + ": " + std::strerror(errno));
  }
  SAMS_RETURN_IF_ERROR(util::WriteAll(fd.get(), payload.data(), payload.size()));
  if (cfg_.fsync_spool && ::fsync(fd.get()) != 0) {
    return util::IoError("fsync " + path + ": " + std::strerror(errno));
  }
  return util::OkError();
}

util::Result<smtp::Envelope> QueueManager::ReadSpoolFile(
    const std::string& path) {
  util::UniqueFd fd(::open(path.c_str(), O_RDONLY));
  if (!fd.valid()) {
    return util::IoError("open " + path + ": " + std::strerror(errno));
  }
  std::string content;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::IoError("read " + path);
    }
    if (n == 0) break;
    content.append(buf, static_cast<std::size_t>(n));
  }

  smtp::Envelope envelope;
  std::size_t pos = 0;
  bool have_body = false;
  while (pos < content.size()) {
    const std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) return util::Corruption(path + ": no newline");
    const std::string_view line(content.data() + pos, eol - pos);
    pos = eol + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) return util::Corruption(path + ": no =");
    const std::string_view key = line.substr(0, eq);
    const std::string value(line.substr(eq + 1));
    if (key == "id") {
      // Consistency only; the filename carries the authoritative id.
    } else if (key == "ip") {
      envelope.client_ip = value;
    } else if (key == "helo") {
      envelope.helo = value;
    } else if (key == "from") {
      auto path_value = smtp::Path::Parse(value);
      if (!path_value) return util::Corruption(path + ": bad from");
      envelope.mail_from = *path_value;
    } else if (key == "rcpt") {
      auto addr = smtp::Address::Parse(value);
      if (!addr) return util::Corruption(path + ": bad rcpt");
      envelope.rcpt_to.push_back(*addr);
    } else if (key == "body") {
      const std::size_t len = std::strtoul(value.c_str(), nullptr, 10);
      if (pos + len > content.size()) {
        return util::Corruption(path + ": body truncated");
      }
      envelope.body = content.substr(pos, len);
      have_body = true;
      break;
    } else {
      return util::Corruption(path + ": unknown key");
    }
  }
  if (!have_body || envelope.rcpt_to.empty()) {
    return util::Corruption(path + ": incomplete spool record");
  }
  return envelope;
}

util::Error QueueManager::RecoverSpool() {
  DIR* dir = ::opendir(cfg_.spool_dir.c_str());
  if (dir == nullptr) {
    return util::IoError("opendir " + cfg_.spool_dir + ": " +
                         std::strerror(errno));
  }
  std::vector<std::string> names;
  // readdir reports end-of-directory and failure the same way; a read
  // error here must not pass off a partial spool scan as a complete
  // recovery.
  errno = 0;
  while (struct dirent* ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    if (name.rfind("inc-", 0) == 0) names.push_back(name);
    errno = 0;
  }
  if (errno != 0) {
    const std::string msg = std::strerror(errno);
    ::closedir(dir);
    return util::IoError("readdir " + cfg_.spool_dir + ": " + msg);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const std::string path = cfg_.spool_dir + "/" + name;
    auto envelope = ReadSpoolFile(path);
    if (!envelope.ok()) {
      SAMS_LOG(kWarn) << "dropping corrupt spool file " << path << ": "
                      << envelope.error().ToString();
      ::unlink(path.c_str());
      continue;
    }
    Item item;
    item.spool_path = path;
    item.envelope = std::move(envelope).value();
    item.not_before = std::chrono::steady_clock::now();
    queue_.push_back(std::move(item));
    stats_.recovered.fetch_add(1, std::memory_order_relaxed);
  }
  return util::OkError();
}

util::Error QueueManager::Start() {
  if (::mkdir(cfg_.spool_dir.c_str(), 0700) != 0 && errno != EEXIST) {
    return util::IoError("mkdir " + cfg_.spool_dir + ": " +
                         std::strerror(errno));
  }
  std::unique_lock<std::mutex> lock(mutex_);
  SAMS_CHECK(!running_) << "queue manager already started";
  SAMS_RETURN_IF_ERROR(RecoverSpool());
  running_ = true;
  thread_ = std::thread([this] { DeliveryLoop(); });
  return util::OkError();
}

void QueueManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::size_t QueueManager::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + in_flight_;
}

void QueueManager::BindMetrics(obs::Registry& registry) {
  auto* enqueued = &registry.GetCounter("sams_queue_enqueued_total",
                                        "mails durably spooled");
  auto* delivered = &registry.GetCounter("sams_queue_delivered_total",
                                         "mails drained into the store");
  auto* deferrals = &registry.GetCounter("sams_queue_deferrals_total",
                                         "delivery retries with backoff");
  auto* failed = &registry.GetCounter("sams_queue_failed_total",
                                      "mails dropped after max attempts");
  auto* recovered = &registry.GetCounter(
      "sams_queue_recovered_total", "spool files picked up at startup");
  auto* depth_gauge = &registry.GetGauge(
      "sams_queue_depth", "mails waiting in the incoming queue");
  registry.AddCollector(
      [this, enqueued, delivered, deferrals, failed, recovered, depth_gauge] {
        enqueued->Overwrite(stats_.enqueued.load(std::memory_order_relaxed));
        delivered->Overwrite(stats_.delivered.load(std::memory_order_relaxed));
        deferrals->Overwrite(stats_.deferrals.load(std::memory_order_relaxed));
        failed->Overwrite(stats_.failed.load(std::memory_order_relaxed));
        recovered->Overwrite(stats_.recovered.load(std::memory_order_relaxed));
        depth_gauge->Set(static_cast<double>(depth()));
      });
}

util::Error QueueManager::Enqueue(const smtp::Envelope& envelope) {
  if (envelope.rcpt_to.empty()) {
    return util::InvalidArgument("envelope without recipients");
  }
  Item item;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const mfs::MailId id = mfs::MailId::Generate(id_rng_);
    char seq[24];
    std::snprintf(seq, sizeof(seq), "%010llu",
                  static_cast<unsigned long long>(spool_seq_++));
    item.spool_path = cfg_.spool_dir + "/inc-" + seq + "-" + id.str();
  }
  SAMS_RETURN_IF_ERROR(WriteSpoolFile(item.spool_path, envelope));
  item.envelope = envelope;
  item.not_before = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(item));
    stats_.enqueued.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
  return util::OkError();
}

void QueueManager::Flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void QueueManager::DeliveryLoop() {
  const std::size_t max_batch = std::max<std::size_t>(cfg_.delivery_batch, 1);
  std::unique_lock<std::mutex> lock(mutex_);
  while (running_) {
    // Drain up to delivery_batch eligible items (not_before passed).
    const auto now = std::chrono::steady_clock::now();
    auto earliest = std::chrono::steady_clock::time_point::max();
    std::vector<Item> batch;
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < max_batch;) {
      if (it->not_before <= now) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        earliest = std::min(earliest, it->not_before);
        ++it;
      }
    }
    if (batch.empty()) {
      if (queue_.empty()) {
        idle_cv_.notify_all();
        cv_.wait(lock, [this] { return !running_ || !queue_.empty(); });
      } else {
        cv_.wait_until(lock, earliest);
      }
      continue;
    }
    in_flight_ = batch.size();
    lock.unlock();

    // Stage every mail in the batch, then ONE durability barrier for
    // all of them — a group-commit store amortizes its fsyncs across
    // the whole batch. Deliveries stay outside the lock.
    std::vector<util::Error> results(batch.size(), util::OkError());
    bool any_staged = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Item& item = batch[i];
      std::vector<std::string> mailboxes;
      for (const smtp::Address& rcpt : item.envelope.rcpt_to) {
        mailboxes.push_back(RecipientDb::MailboxName(rcpt));
      }
      const std::size_t dash = item.spool_path.rfind('-');
      auto id = mfs::MailId::Parse(item.spool_path.substr(dash + 1));
      util::Error err =
          id ? store_.StageDelivery(*id, item.envelope.body, mailboxes)
             : util::Corruption("spool path without id");
      // Retried deliveries that already landed count as success (MFS
      // rejects the duplicate id).
      if (err.code() == util::ErrorCode::kAlreadyExists) err = util::OkError();
      if (err.ok()) any_staged = true;
      results[i] = err;
    }
    // Only group-commit stores need (or want) a per-batch barrier;
    // otherwise durability follows the store's own fsync options, as
    // it always did.
    util::Error commit_err = util::OkError();
    if (any_staged && store_.committer() != nullptr) {
      commit_err = store_.Commit();
    }

    lock.lock();
    in_flight_ = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Item& item = batch[i];
      // A staged mail is only delivered if the batch barrier held.
      const util::Error err = results[i].ok() ? commit_err : results[i];
      if (err.ok()) {
        ::unlink(item.spool_path.c_str());
        stats_.delivered.fetch_add(1, std::memory_order_relaxed);
      } else if (++item.attempts >= cfg_.max_attempts) {
        SAMS_LOG(kError) << "dropping mail after " << item.attempts
                         << " attempts: " << err.ToString();
        ::unlink(item.spool_path.c_str());
        stats_.failed.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.deferrals.fetch_add(1, std::memory_order_relaxed);
        const auto backoff = std::chrono::milliseconds(
            cfg_.base_retry_ms << (item.attempts - 1));
        item.not_before = std::chrono::steady_clock::now() + backoff;
        queue_.push_back(std::move(item));
      }
    }
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace sams::mta
