#include "mta/drivers.h"

#include <memory>

#include "util/logging.h"

namespace sams::mta {
namespace {

struct Snapshot {
  sim::CpuStats cpu;
  ServerMetrics server;
  std::uint64_t dns_queries = 0;
};

Snapshot Take(sim::Machine& machine, const SimMailServer& server,
              const dnsbl::Resolver* resolver) {
  Snapshot snap;
  snap.cpu = machine.cpu().stats();
  snap.server = server.metrics();
  if (resolver != nullptr) snap.dns_queries = resolver->stats().dns_queries_sent;
  return snap;
}

LoadResult Delta(const Snapshot& before, const Snapshot& after, SimTime window,
                 const dnsbl::Resolver* resolver) {
  LoadResult result;
  const double secs = window.seconds();
  result.mails_delivered =
      after.server.mails_delivered - before.server.mails_delivered;
  result.mailbox_deliveries =
      after.server.mailbox_deliveries - before.server.mailbox_deliveries;
  result.mailbox_writes_per_sec =
      static_cast<double>(result.mailbox_deliveries) / secs;
  result.connections_closed =
      after.server.connections_closed - before.server.connections_closed;
  result.bounce_sessions =
      after.server.bounce_sessions - before.server.bounce_sessions;
  result.unfinished_sessions =
      after.server.unfinished_sessions - before.server.unfinished_sessions;
  result.forks = after.server.forks - before.server.forks;
  result.context_switches =
      after.cpu.context_switches - before.cpu.context_switches;
  result.dns_queries = after.dns_queries - before.dns_queries;
  result.goodput_mails_per_sec =
      static_cast<double>(result.mails_delivered) / secs;
  result.sessions_per_sec =
      static_cast<double>(result.connections_closed) / secs;
  result.cpu_utilization =
      (after.cpu.busy - before.cpu.busy).seconds() / secs;
  result.cpu_switch_overhead =
      (after.cpu.switch_overhead - before.cpu.switch_overhead).seconds() / secs;
  if (resolver != nullptr) result.dnsbl_hit_ratio = resolver->stats().HitRatio();
  return result;
}

}  // namespace

LoadResult RunClosedLoop(sim::Machine& machine, SimMailServer& server,
                         std::span<const trace::SessionSpec> trace,
                         int concurrency, SimTime warmup, SimTime window,
                         const dnsbl::Resolver* resolver) {
  SAMS_CHECK(!trace.empty());
  SAMS_CHECK(concurrency > 0);

  // Each slot cycles: session completes -> next trace entry starts.
  // State lives on the heap so the lambdas stay copyable & small.
  auto next_index = std::make_shared<std::size_t>(0);
  auto launch = std::make_shared<std::function<void()>>();
  *launch = [&server, trace, next_index, launch] {
    const trace::SessionSpec& spec = trace[*next_index % trace.size()];
    ++*next_index;
    server.Connect(spec, [launch](bool) { (*launch)(); });
  };
  for (int i = 0; i < concurrency; ++i) (*launch)();

  machine.sim().RunUntil(warmup);
  const Snapshot before = Take(machine, server, resolver);
  machine.sim().RunUntil(warmup + window);
  const Snapshot after = Take(machine, server, resolver);
  // Sever the self-referential launch cycle so the shared_ptrs free.
  *launch = [] {};
  return Delta(before, after, window, resolver);
}

LoadResult RunOpenLoop(sim::Machine& machine, SimMailServer& server,
                       std::span<const trace::SessionSpec> trace,
                       double rate_per_sec, SimTime warmup, SimTime window,
                       util::Rng& rng, const dnsbl::Resolver* resolver) {
  SAMS_CHECK(!trace.empty());
  SAMS_CHECK(rate_per_sec > 0);

  const SimTime end = warmup + window;
  auto next_index = std::make_shared<std::size_t>(0);
  auto arrive = std::make_shared<std::function<void()>>();
  *arrive = [&machine, &server, &rng, trace, next_index, arrive, rate_per_sec,
             end] {
    if (machine.sim().Now() > end) return;  // stop generating load
    const trace::SessionSpec& spec = trace[*next_index % trace.size()];
    ++*next_index;
    server.Connect(spec, nullptr);
    const SimTime gap = SimTime::SecondsF(rng.Exponential(1.0 / rate_per_sec));
    machine.sim().After(gap, [arrive] { (*arrive)(); });
  };
  (*arrive)();

  machine.sim().RunUntil(warmup);
  const Snapshot before = Take(machine, server, resolver);
  machine.sim().RunUntil(end);
  const Snapshot after = Take(machine, server, resolver);
  *arrive = [] {};
  return Delta(before, after, window, resolver);
}

}  // namespace sams::mta
