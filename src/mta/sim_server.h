// SimMailServer — the discrete-event model of the postfix-class MTA,
// in both concurrency architectures:
//
//   Vanilla (Figure 6): the master accepts and hands every connection
//   to a dedicated smtpd process (forked on demand up to the process
//   limit, then recycled). Bounces and unfinished sessions burn a full
//   process lifecycle — fork amortization, context switches, slot
//   occupancy.
//
//   Hybrid / fork-after-trust (Figure 7): the master runs the early
//   dialog (banner → HELO → MAIL → RCPT) for every connection in its
//   event loop at event-dispatch cost, with no per-session process.
//   Only after the first valid RCPT is the connection delegated to an
//   smtpd worker (vector-send task batching, §5.3); bounce and
//   unfinished sessions never leave the master.
//
// One SimMailServer also embeds the client's side of each session (the
// trace's SessionSpec fully determines client behaviour), so drivers
// only decide WHEN connections start — closed-loop (Client Program 1)
// or open-loop (Client Program 2).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "dnsbl/resolver.h"
#include "mfs/sim_store.h"
#include "mta/costs.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "rep/reputation.h"
#include "sim/machine.h"
#include "trace/workload.h"

namespace sams::mta {

struct SimServerConfig {
  bool hybrid = false;
  // Vanilla: max smtpd processes. Hybrid: max smtpd *workers* (the
  // post-trust pool).
  int process_limit = 500;
  // Hybrid: max connections the master keeps in its socket list
  // (the paper configures 700 sockets, §5.4).
  int master_connection_limit = 700;
  // Hybrid: delegated tasks that fit in one worker's UNIX-socket
  // buffer (64 KiB / task size ~ 28, §5.3).
  int delegate_queue_per_worker = 28;
  // Idle time an unfinished session dawdles before quitting.
  SimTime unfinished_hold;
  // Reject blacklisted clients at MAIL time (postfix reject_rbl); when
  // false the verdict is recorded but the mail is accepted (scoring
  // deployments).
  bool reject_blacklisted = false;
  // Optional pre-trust reputation engine (not owned; must outlive the
  // server). The sim has no byte-level dialog, so the gate runs on
  // history + the DNSBL flag (GateOnHistory) and outcomes reinforce
  // the client's /24 bucket: a /24 that keeps bouncing or abandoning
  // sessions is 554-rejected at the banner on later connections —
  // before the hybrid master would ever delegate/fork. Null = off.
  rep::ReputationEngine* reputation = nullptr;
  ServerCosts costs;
};

struct ServerMetrics {
  std::uint64_t connections_started = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t mails_delivered = 0;
  std::uint64_t mailbox_deliveries = 0;  // mails x recipients written
  std::uint64_t bounce_sessions = 0;
  std::uint64_t unfinished_sessions = 0;
  std::uint64_t blacklist_rejects = 0;
  std::uint64_t rep_rejects = 0;  // 554s by the reputation gate
  std::uint64_t forks = 0;
  std::uint64_t delegations = 0;
  std::uint64_t backlog_enqueued = 0;
};

class SimMailServer {
 public:
  // `resolver` may be null (DNSBL checks disabled).
  SimMailServer(sim::Machine& machine, SimServerConfig cfg,
                mfs::SimMailStore& store, dnsbl::Resolver* resolver = nullptr);

  // `done(delivered)` fires when the session closes.
  using SessionDone = std::function<void(bool delivered)>;
  void Connect(const trace::SessionSpec& spec, SessionDone done);

  // Publishes the server's counters/gauges into `registry` (refreshed
  // from ServerMetrics at collect time, labelled with the concurrency
  // architecture) and, when `sink` is non-null, records one span per
  // pipeline stage of every subsequent session on the simulated clock.
  // Registry and sink must outlive the server.
  void BindObservability(obs::Registry& registry, obs::TraceSink* sink);

  const ServerMetrics& metrics() const { return metrics_; }
  int busy_workers() const { return busy_workers_; }
  std::size_t backlog_depth() const { return backlog_.size(); }

 private:
  struct Session {
    trace::SessionSpec spec;
    SessionDone done;
    int pid = 0;  // handling process (master until delegation in hybrid)
    int pending_rcpts = 0;  // RCPTs left for the worker after handoff
    obs::SessionSpan span;  // detached unless a TraceSink is bound
  };

  static constexpr int kMasterPid = 0;

  std::int64_t NowNs() const { return machine_.sim().Now().nanos(); }

  // --- shared plumbing ------------------------------------------------
  void Close(Session session, bool delivered);
  // Charge `cpu_cost` to session.pid, then wait one client round trip.
  void StepThenRtt(SimTime cpu_cost, Session session,
                   std::function<void(Session)> next);
  void RunDnsblCheck(Session session, std::function<void(Session, bool)> next);

  // --- vanilla path -----------------------------------------------------
  void VanillaAssign(Session session);
  void WorkerFreed(int pid);
  void RunSmtpDialog(Session session);  // banner -> ... (any architecture)
  void RunRcptPhase(Session session, int remaining);
  void RunDataPhase(Session session);
  void RunQuit(Session session, bool delivered);

  // --- hybrid path ------------------------------------------------------
  void HybridAdmit(Session session);
  // Delegates after the FIRST valid RCPT (§5.3); the worker finishes
  // the remaining `remaining_rcpts` RCPT commands and the DATA phase.
  void HybridDelegate(Session session, int remaining_rcpts);
  void HybridStartWorker(Session session, int remaining_rcpts);
  void HybridWorkerFreed(int pid);

  sim::Machine& machine_;
  SimServerConfig cfg_;
  mfs::SimMailStore& store_;
  dnsbl::Resolver* resolver_;

  // Process management. Worker pids start at 1.
  std::vector<int> free_workers_;
  int spawned_workers_ = 0;
  int busy_workers_ = 0;
  std::deque<Session> backlog_;        // vanilla: waiting for a process
  std::deque<Session> delegate_queue_; // hybrid: waiting for a worker
  int master_connections_ = 0;
  std::deque<Session> accept_backlog_;  // hybrid: waiting for a socket slot

  ServerMetrics metrics_;
  obs::TraceSink* trace_ = nullptr;  // null until BindObservability
};

}  // namespace sams::mta
