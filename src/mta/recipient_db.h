// Local recipient database — the "access database" smtpd consults to
// decide whether a RCPT TO mailbox exists (§2, Figure 2). Random-
// guessing spam probes this map; misses are the 550 bounces of §4.1.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "smtp/address.h"

namespace sams::mta {

class RecipientDb {
 public:
  // Registers `local`@`domain` as a deliverable mailbox.
  void AddMailbox(const std::string& local, const std::string& domain);

  // Convenience: parses "local@domain".
  bool AddMailbox(const std::string& address);

  // True when the address is a registered local mailbox.
  bool IsValid(const smtp::Address& addr) const;

  // The mailbox (store) name for a valid recipient: the local part.
  static std::string MailboxName(const smtp::Address& addr) {
    return addr.local();
  }

  std::size_t size() const;
  bool ServesDomain(const std::string& domain) const;

 private:
  // domain -> set of local parts (ASCII-lowercased).
  std::unordered_map<std::string, std::unordered_set<std::string>> domains_;
};

}  // namespace sams::mta
