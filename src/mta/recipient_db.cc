#include "mta/recipient_db.h"

#include "util/strings.h"

namespace sams::mta {

void RecipientDb::AddMailbox(const std::string& local,
                             const std::string& domain) {
  domains_[util::ToLowerAscii(domain)].insert(util::ToLowerAscii(local));
}

bool RecipientDb::AddMailbox(const std::string& address) {
  auto addr = smtp::Address::Parse(address);
  if (!addr) return false;
  AddMailbox(addr->local(), addr->domain());
  return true;
}

bool RecipientDb::IsValid(const smtp::Address& addr) const {
  auto it = domains_.find(util::ToLowerAscii(addr.domain()));
  if (it == domains_.end()) return false;
  return it->second.contains(util::ToLowerAscii(addr.local()));
}

std::size_t RecipientDb::size() const {
  std::size_t total = 0;
  for (const auto& [domain, locals] : domains_) total += locals.size();
  return total;
}

bool RecipientDb::ServesDomain(const std::string& domain) const {
  return domains_.contains(util::ToLowerAscii(domain));
}

}  // namespace sams::mta
