#include "mta/smtp_server.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <unordered_map>

#include "fault/injector.h"
#include "util/logging.h"
#include "util/time.h"

namespace sams::mta {
namespace {

// Restores blocking mode on a descriptor the master had non-blocking.
void SetBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
}

}  // namespace

// Per-connection state in the fork-after-trust master.
struct SmtpServer::MasterConn {
  util::UniqueFd fd;
  std::unique_ptr<smtp::ServerSession> session;
  bool closed = false;
  // Pregreet test state: banner withheld until the timer fires; any
  // bytes before that mark the client as an early talker.
  bool banner_sent = true;   // false while the pregreet timer is armed
  bool pregreeted = false;
  util::UniqueFd pregreet_timer;
  // Reaper bookkeeping (monotonic ns): slow-loris sessions are evicted
  // on inactivity, and every pre-trust session has a hard deadline.
  std::int64_t accepted_ns = 0;
  std::int64_t last_activity_ns = 0;
};

SmtpServer::SmtpServer(RealServerConfig cfg, RecipientDb recipients,
                       mfs::MailStore& store)
    : cfg_(std::move(cfg)), recipients_(std::move(recipients)), store_(store) {}

SmtpServer::~SmtpServer() { Stop(); }

bool SmtpServer::DeliverEnvelope(smtp::Envelope&& envelope) {
  const std::size_t n_mailboxes = envelope.rcpt_to.size();
  if (queue_) {
    // Durable path: spool and ack; the queue manager delivers.
    const util::Error err = queue_->Enqueue(envelope);
    if (!err.ok()) {
      SAMS_LOG(kError) << "spool failed: " << err.ToString();
      stats_.delivery_errors.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    stats_.mails_delivered.fetch_add(1, std::memory_order_relaxed);
    stats_.mailbox_deliveries.fetch_add(n_mailboxes,
                                        std::memory_order_relaxed);
    return true;
  }
  std::vector<std::string> mailboxes;
  mailboxes.reserve(envelope.rcpt_to.size());
  for (const smtp::Address& rcpt : envelope.rcpt_to) {
    mailboxes.push_back(RecipientDb::MailboxName(rcpt));
  }
  mfs::MailId id;
  {
    std::lock_guard<std::mutex> lock(id_mutex_);
    id = mfs::MailId::Generate(id_rng_);
  }
  std::lock_guard<std::mutex> lock(store_mutex_);
  const util::Error err = store_.Deliver(id, envelope.body, mailboxes);
  if (!err.ok()) {
    SAMS_LOG(kError) << "delivery failed: " << err.ToString();
    stats_.delivery_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  stats_.mails_delivered.fetch_add(1, std::memory_order_relaxed);
  stats_.mailbox_deliveries.fetch_add(mailboxes.size(),
                                      std::memory_order_relaxed);
  return true;
}

void SmtpServer::BindObservability(obs::Registry& registry,
                                   obs::TraceSink* sink) {
  registry_ = &registry;
  trace_ = sink;
  const obs::Labels arch = {
      {"arch", cfg_.architecture == Architecture::kForkAfterTrust
                   ? "fork-after-trust"
                   : "thread-per-connection"}};
  auto* conns = &registry.GetCounter("sams_smtp_connections_total",
                                     "client connections accepted", arch);
  auto* mails = &registry.GetCounter("sams_smtp_mails_delivered_total",
                                     "mails accepted and made durable", arch);
  auto* mailbox = &registry.GetCounter(
      "sams_smtp_mailbox_deliveries_total",
      "mailbox writes (mails x valid recipients)", arch);
  auto* rejected = &registry.GetCounter("sams_smtp_rejected_rcpts_total",
                                        "RCPT commands answered 550", arch);
  auto* content = &registry.GetCounter(
      "sams_smtp_content_rejects_total",
      "mails 554-rejected by the post-DATA body test", arch);
  auto* pregreet = &registry.GetCounter(
      "sams_smtp_pregreet_rejects_total",
      "early talkers rejected before the banner", arch);
  auto* delegations = &registry.GetCounter(
      "sams_smtp_delegations_total",
      "fork-after-trust handoffs from master to worker", arch);
  auto* master_closed = &registry.GetCounter(
      "sams_smtp_master_closed_total",
      "sessions that never left the master loop", arch);
  auto* errors = &registry.GetCounter("sams_smtp_delivery_errors_total",
                                      "store deliveries that failed", arch);
  auto* reaped = &registry.GetCounter(
      "sams_smtp_idle_reaped_total",
      "master sessions 421-evicted on idle/deadline", arch);
  auto* sheds = &registry.GetCounter(
      "sams_smtp_overload_sheds_total",
      "connections 421-shed at accept by the overload gate", arch);
  auto* deaths = &registry.GetCounter(
      "sams_smtp_worker_deaths_total",
      "delegation channels retired after a worker died", arch);
  auto* requeues = &registry.GetCounter(
      "sams_smtp_requeued_delegations_total",
      "delegations retried on a live worker after a death", arch);
  auto* inflight = &registry.GetGauge(
      "sams_smtp_inflight_sessions", "sessions accepted and not yet done",
      arch);
  registry.AddCollector([this, conns, mails, mailbox, rejected, content,
                         pregreet, delegations, master_closed, errors, reaped,
                         sheds, deaths, requeues, inflight] {
    reaped->Overwrite(stats_.idle_reaped.load(std::memory_order_relaxed));
    sheds->Overwrite(stats_.overload_sheds.load(std::memory_order_relaxed));
    deaths->Overwrite(stats_.worker_deaths.load(std::memory_order_relaxed));
    requeues->Overwrite(
        stats_.requeued_delegations.load(std::memory_order_relaxed));
    inflight->Set(
        static_cast<double>(inflight_.load(std::memory_order_relaxed)));
    conns->Overwrite(stats_.connections.load(std::memory_order_relaxed));
    mails->Overwrite(stats_.mails_delivered.load(std::memory_order_relaxed));
    mailbox->Overwrite(
        stats_.mailbox_deliveries.load(std::memory_order_relaxed));
    rejected->Overwrite(stats_.rejected_rcpts.load(std::memory_order_relaxed));
    content->Overwrite(stats_.content_rejects.load(std::memory_order_relaxed));
    pregreet->Overwrite(
        stats_.pregreet_rejects.load(std::memory_order_relaxed));
    delegations->Overwrite(stats_.delegations.load(std::memory_order_relaxed));
    master_closed->Overwrite(
        stats_.master_closed.load(std::memory_order_relaxed));
    errors->Overwrite(stats_.delivery_errors.load(std::memory_order_relaxed));
  });
  store_.BindMetrics(registry);
}

util::Result<std::uint16_t> SmtpServer::Start() {
  SAMS_CHECK(!running_.load()) << "server already started";
  auto listener = net::TcpListen(cfg_.port);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(listener).value();
  auto port = net::LocalPort(listener_.get());
  if (!port.ok()) return port.error();

  if (!cfg_.spool_dir.empty()) {
    QueueConfig queue_cfg;
    queue_cfg.spool_dir = cfg_.spool_dir;
    queue_ = std::make_unique<QueueManager>(queue_cfg, store_);
    if (registry_ != nullptr) queue_->BindMetrics(*registry_);
    SAMS_RETURN_IF_ERROR(queue_->Start());
  }

  running_.store(true, std::memory_order_release);
  accepting_.store(true, std::memory_order_release);
  if (cfg_.architecture == Architecture::kThreadPerConnection) {
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  } else {
    auto loop = net::EventLoop::Create();
    if (!loop.ok()) return loop.error();
    loop_ = std::move(loop).value();
    if (registry_ != nullptr) loop_->BindMetrics(*registry_);
    // Worker pool with one UNIX-domain delegation channel each (§5.3).
    for (int i = 0; i < cfg_.worker_count; ++i) {
      auto pair = util::MakeSocketPair();
      if (!pair.ok()) return pair.error();
      worker_channels_.push_back(std::move(pair->first));
      const int worker_fd = pair->second.Release();
      worker_threads_.emplace_back(
          [this, worker_fd] { WorkerLoop(worker_fd); });
    }
    master_thread_ = std::thread([this] { MasterLoop(); });
  }
  return *port;
}

int SmtpServer::Drain(int grace_ms) {
  if (!running_.load(std::memory_order_acquire)) return 0;
  // Refuse new work: the listener stops accepting but every session
  // already admitted keeps running.
  accepting_.store(false, std::memory_order_release);
  ::shutdown(listener_.get(), SHUT_RDWR);
  const std::int64_t deadline =
      util::MonotonicNanos() + static_cast<std::int64_t>(grace_ms) * 1'000'000;
  while (inflight_.load(std::memory_order_relaxed) > 0 &&
         util::MonotonicNanos() < deadline) {
    struct timespec ts{0, 5'000'000};  // 5 ms
    ::nanosleep(&ts, nullptr);
  }
  const int leftover = inflight_.load(std::memory_order_relaxed);
  if (leftover > 0) {
    SAMS_LOG(kWarn) << "drain grace expired with " << leftover
                    << " sessions still open";
  }
  if (queue_) queue_->Flush();  // every acked mail reaches its mailbox
  Stop();
  return leftover;
}

bool SmtpServer::AdmitSession(int fd) {
  const int now = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cfg_.max_inflight_sessions > 0 && now > cfg_.max_inflight_sessions) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    stats_.overload_sheds.fetch_add(1, std::memory_order_relaxed);
    static constexpr char kShed[] =
        "421 4.3.2 Service overloaded, try again later\r\n";
    (void)util::SendAll(fd, kShed, sizeof(kShed) - 1);
    return false;
  }
  return true;
}

void SmtpServer::Stop() {
  accepting_.store(false, std::memory_order_release);
  if (!running_.exchange(false)) return;
  // Closing the listener unblocks accept(); stopping the loop unblocks
  // epoll_wait; closing the delegation channels unblocks the workers.
  ::shutdown(listener_.get(), SHUT_RDWR);
  listener_.Reset();
  if (loop_) loop_->Stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (master_thread_.joinable()) master_thread_.join();
  worker_channels_.clear();  // EOF to workers
  for (std::thread& worker : worker_threads_) {
    if (worker.joinable()) worker.join();
  }
  worker_threads_.clear();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(conn_threads_);
  }
  for (std::thread& conn : conns) {
    if (conn.joinable()) conn.join();
  }
  if (queue_) {
    queue_->Flush();  // drain the incoming queue before shutdown
    queue_->Stop();
  }
}

// --- thread-per-connection (Figure 6) ----------------------------------

void SmtpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire) &&
         accepting_.load(std::memory_order_acquire)) {
    auto accepted = net::TcpAccept(listener_.get());
    if (!accepted.ok()) {
      if (!running_.load() || !accepting_.load()) break;
      continue;  // transient accept failure
    }
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    if (!AdmitSession(accepted->fd.get())) continue;  // shed; fd closes
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_threads_.emplace_back(
        [this, fd = std::move(accepted->fd),
         ip = std::move(accepted->peer_ip)]() mutable {
          HandleConnection(std::move(fd), std::move(ip));
        });
  }
}

void SmtpServer::HandleConnection(util::UniqueFd fd, std::string peer_ip) {
  (void)net::SetRecvTimeout(fd.get(), cfg_.recv_timeout_ms);
  if (cfg_.send_timeout_ms > 0) {
    (void)net::SetSendTimeout(fd.get(), cfg_.send_timeout_ms);
  }
  bool quit = false;
  smtp::ServerSession::Hooks hooks;
  const int raw = fd.get();
  hooks.send = [raw](std::string bytes) {
    (void)util::SendAll(raw, bytes.data(), bytes.size());
  };
  hooks.validate_rcpt = [this](const smtp::Address& addr) {
    const bool ok = recipients_.IsValid(addr);
    if (!ok) stats_.rejected_rcpts.fetch_add(1, std::memory_order_relaxed);
    return ok;
  };
  if (cfg_.content_check) {
    hooks.content_check = [this](const smtp::Envelope& envelope) {
      const bool accepted = cfg_.content_check(envelope);
      if (!accepted) {
        stats_.content_rejects.fetch_add(1, std::memory_order_relaxed);
      }
      return accepted;
    };
  }
  hooks.on_mail = [this](smtp::Envelope&& envelope) {
    DeliverEnvelope(std::move(envelope));
  };
  hooks.on_quit = [&quit] { quit = true; };
  smtp::ServerSession session(cfg_.session, std::move(hooks), peer_ip);
  if (trace_ != nullptr) {
    session.AttachTracer(
        trace_, &util::MonotonicNanos,
        trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  session.Start();
  FinishSession(session, fd.get());
  (void)quit;
  SessionDone();
}

void SmtpServer::FinishSession(smtp::ServerSession& session, int fd) {
  char buf[16 * 1024];
  while (running_.load(std::memory_order_acquire) &&
         session.state() != smtp::SessionState::kClosed) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, timeout or error: drop the connection
    session.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

// --- fork-after-trust (Figure 7) ----------------------------------------

void SmtpServer::MasterLoop() {
  // Connections keyed by fd; sessions run in the event loop until the
  // first valid RCPT, then get shipped to a worker.
  std::unordered_map<int, std::unique_ptr<MasterConn>> conns;

  (void)util::SetNonBlocking(listener_.get());
  const int listen_fd = listener_.get();

  auto close_conn = [this, &conns](int fd) {
    (void)loop_->Remove(fd);
    conns.erase(fd);
    stats_.master_closed.fetch_add(1, std::memory_order_relaxed);
    SessionDone();
  };

  auto delegate = [this, &conns](int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    MasterConn& conn = *it->second;
    conn.session->TraceHandoff();
    auto payload = conn.session->SerializeHandoff();
    if (!payload.ok()) {
      SAMS_LOG(kWarn) << "handoff failed: " << payload.error().ToString();
      (void)loop_->Remove(fd);
      conns.erase(it);
      SessionDone();
      return;
    }
    // Round-robin over the LIVE workers. kUnavailable from the channel
    // (EPIPE — the worker died) retires that channel and requeues the
    // session on the next live worker; the client never notices.
    bool handed_off = false;
    bool saw_death = false;
    const std::size_t n_workers = worker_channels_.size();
    for (std::size_t tried = 0; tried < n_workers; ++tried) {
      const std::size_t worker = next_worker_++ % n_workers;
      if (!worker_channels_[worker].valid()) continue;  // retired earlier
      const util::Error err = util::SendFdWithPayload(
          worker_channels_[worker].get(), fd, *payload);
      if (err.ok()) {
        stats_.delegations.fetch_add(1, std::memory_order_relaxed);
        if (saw_death) {
          stats_.requeued_delegations.fetch_add(1, std::memory_order_relaxed);
        }
        handed_off = true;
        break;
      }
      if (err.code() == util::ErrorCode::kUnavailable) {
        SAMS_LOG(kWarn) << "smtpd worker " << worker
                        << " died: " << err.ToString();
        worker_channels_[worker].Reset();
        stats_.worker_deaths.fetch_add(1, std::memory_order_relaxed);
        saw_death = true;
        continue;
      }
      SAMS_LOG(kError) << "delegation failed: " << err.ToString();
      break;
    }
    if (!handed_off) {
      static constexpr char kBusy[] =
          "421 4.3.2 No smtpd available, try again later\r\n";
      (void)util::SendAll(fd, kBusy, sizeof(kBusy) - 1);
      SessionDone();
    }
    // On success the worker holds a duplicate now; drop the master's
    // copy either way.
    (void)loop_->Remove(fd);
    conns.erase(it);
  };

  auto on_client_event = [this, &conns, close_conn, delegate](int fd,
                                                              std::uint32_t) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    MasterConn& conn = *it->second;
    char buf[8 * 1024];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        conn.last_activity_ns = util::MonotonicNanos();
        if (!conn.banner_sent) {
          // Early talker: the banner has not been sent yet, so these
          // bytes violate the SMTP handshake. Remember and discard;
          // the timer callback rejects the client.
          conn.pregreeted = true;
          continue;
        }
        conn.session->Feed(std::string_view(buf, static_cast<std::size_t>(n)));
        if (conn.session->paused()) {
          delegate(fd);
          return;
        }
        if (conn.closed ||
            conn.session->state() == smtp::SessionState::kClosed) {
          close_conn(fd);
          return;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      close_conn(fd);  // EOF or hard error
      return;
    }
  };

  const util::Error add_err = loop_->Add(
      listen_fd, EPOLLIN,
      [this, &conns, on_client_event, close_conn, listen_fd](std::uint32_t) {
        for (;;) {
          auto accepted = net::TcpAccept(listener_.get());
          if (!accepted.ok()) {
            // EAGAIN (non-blocking) — or Drain() shut the listener
            // down, in which case stop polling it to avoid a spin.
            if (!accepting_.load(std::memory_order_acquire)) {
              (void)loop_->Remove(listen_fd);
            }
            return;
          }
          stats_.connections.fetch_add(1, std::memory_order_relaxed);
          const int fd = accepted->fd.get();
          if (!AdmitSession(fd)) continue;  // shed; fd closes with accepted
          (void)util::SetNonBlocking(fd);

          auto conn = std::make_unique<MasterConn>();
          conn->fd = std::move(accepted->fd);
          conn->accepted_ns = util::MonotonicNanos();
          conn->last_activity_ns = conn->accepted_ns;
          smtp::ServerSession::Hooks hooks;
          hooks.send = [fd](std::string bytes) {
            (void)util::SendAll(fd, bytes.data(), bytes.size());
          };
          hooks.validate_rcpt = [this](const smtp::Address& addr) {
            const bool ok = recipients_.IsValid(addr);
            if (!ok) {
              stats_.rejected_rcpts.fetch_add(1, std::memory_order_relaxed);
            }
            return ok;
          };
          MasterConn* raw_conn = conn.get();
          // Freeze the session at the first valid RCPT: the remaining
          // bytes stay buffered and travel inside the handoff payload.
          hooks.on_first_valid_rcpt = [raw_conn] {
            raw_conn->session->RequestPause();
          };
          hooks.on_quit = [raw_conn] { raw_conn->closed = true; };
          conn->session = std::make_unique<smtp::ServerSession>(
              cfg_.session, std::move(hooks), accepted->peer_ip);
          if (trace_ != nullptr) {
            conn->session->AttachTracer(
                trace_, &util::MonotonicNanos,
                trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
          }
          if (cfg_.pregreet_delay_ms > 0) {
            // Withhold the banner; arm a one-shot timer. Bytes arriving
            // before it fires brand the client an early talker.
            conn->banner_sent = false;
            conn->pregreet_timer.Reset(
                ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC));
            struct itimerspec when {};
            when.it_value.tv_sec = cfg_.pregreet_delay_ms / 1000;
            when.it_value.tv_nsec =
                static_cast<long>(cfg_.pregreet_delay_ms % 1000) * 1'000'000L;
            ::timerfd_settime(conn->pregreet_timer.get(), 0, &when, nullptr);
            const int timer_fd = conn->pregreet_timer.get();
            (void)loop_->Add(timer_fd, EPOLLIN,
                             [this, &conns, close_conn, fd,
                              timer_fd](std::uint32_t) {
                               (void)loop_->Remove(timer_fd);
                               auto conn_it = conns.find(fd);
                               if (conn_it == conns.end()) return;
                               MasterConn& parked = *conn_it->second;
                               parked.pregreet_timer.Reset();
                               parked.banner_sent = true;
                               if (parked.pregreeted) {
                                 stats_.pregreet_rejects.fetch_add(
                                     1, std::memory_order_relaxed);
                                 const std::string reject =
                                     "554 5.5.1 Protocol error: talked "
                                     "before my banner\r\n";
                                 (void)util::SendAll(fd, reject.data(),
                                                     reject.size());
                                 close_conn(fd);
                                 return;
                               }
                               parked.session->Start();  // 220 banner
                             });
          } else {
            conn->session->Start();
          }
          conns.emplace(fd, std::move(conn));
          (void)loop_->Add(fd, EPOLLIN, [fd, on_client_event](std::uint32_t e) {
            on_client_event(fd, e);
          });
        }
      });
  if (!add_err.ok()) {
    SAMS_LOG(kError) << "master loop setup failed: " << add_err.ToString();
    return;
  }

  // Periodic reaper: evict parked sessions that have gone idle (slow
  // loris) or outlived the pre-trust deadline. Spammers must not be
  // able to fill the master's epoll set with half-open dialogs.
  util::UniqueFd reap_timer;
  if (cfg_.master_idle_timeout_ms > 0 || cfg_.master_session_deadline_ms > 0) {
    int tick_ms = 1'000;
    if (cfg_.master_idle_timeout_ms > 0) {
      tick_ms = std::min(tick_ms, std::max(10, cfg_.master_idle_timeout_ms / 4));
    }
    if (cfg_.master_session_deadline_ms > 0) {
      tick_ms =
          std::min(tick_ms, std::max(10, cfg_.master_session_deadline_ms / 4));
    }
    reap_timer.Reset(::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC));
    struct itimerspec when {};
    when.it_value.tv_sec = tick_ms / 1000;
    when.it_value.tv_nsec = static_cast<long>(tick_ms % 1000) * 1'000'000L;
    when.it_interval = when.it_value;
    ::timerfd_settime(reap_timer.get(), 0, &when, nullptr);
    const int timer_fd = reap_timer.get();
    (void)loop_->Add(
        timer_fd, EPOLLIN,
        [this, &conns, close_conn, timer_fd](std::uint32_t) {
          std::uint64_t expirations = 0;
          (void)::read(timer_fd, &expirations, sizeof(expirations));
          const std::int64_t now = util::MonotonicNanos();
          const std::int64_t idle_ns =
              static_cast<std::int64_t>(cfg_.master_idle_timeout_ms) *
              1'000'000;
          const std::int64_t deadline_ns =
              static_cast<std::int64_t>(cfg_.master_session_deadline_ms) *
              1'000'000;
          std::vector<int> expired;
          for (const auto& [fd, conn] : conns) {
            const bool idle =
                idle_ns > 0 && now - conn->last_activity_ns >= idle_ns;
            const bool over =
                deadline_ns > 0 && now - conn->accepted_ns >= deadline_ns;
            if (idle || over) expired.push_back(fd);
          }
          for (int fd : expired) {
            stats_.idle_reaped.fetch_add(1, std::memory_order_relaxed);
            static constexpr char kReap[] =
                "421 4.4.2 Idle timeout, closing transmission channel\r\n";
            (void)util::SendAll(fd, kReap, sizeof(kReap) - 1);
            close_conn(fd);
          }
        });
  }

  (void)loop_->Run();
  // Drain: close any connections still parked in the master.
  conns.clear();
}

void SmtpServer::WorkerLoop(int channel_fd) {
  util::UniqueFd channel(channel_fd);
  for (;;) {
    // Blocks until the master delegates a connection (one recvmsg pops
    // exactly one task even when several are queued in the socket
    // buffer — the vector-send batching of §5.3) or closes the channel.
    auto task = util::RecvFdWithPayload(channel.get());
    if (!task.ok()) return;  // EOF: server stopping

    if (!SAMS_FAULT_ERROR("mta.worker.after_recv").ok()) {
      // Simulated smtpd death mid-delegation: abandon the channel the
      // way a crashed worker process would. The client socket closes
      // (its unacked session is lost, never acked mail) and the
      // master's next send on this channel gets EPIPE and requeues.
      SessionDone();
      return;
    }

    const int fd = task->fd.get();
    SetBlocking(fd);
    (void)net::SetRecvTimeout(fd, cfg_.recv_timeout_ms);
    if (cfg_.send_timeout_ms > 0) {
      (void)net::SetSendTimeout(fd, cfg_.send_timeout_ms);
    }

    smtp::ServerSession::Hooks hooks;
    hooks.send = [fd](std::string bytes) {
      (void)util::SendAll(fd, bytes.data(), bytes.size());
    };
    hooks.validate_rcpt = [this](const smtp::Address& addr) {
      const bool ok = recipients_.IsValid(addr);
      if (!ok) stats_.rejected_rcpts.fetch_add(1, std::memory_order_relaxed);
      return ok;
    };
    if (cfg_.content_check) {
      hooks.content_check = [this](const smtp::Envelope& envelope) {
        const bool accepted = cfg_.content_check(envelope);
        if (!accepted) {
          stats_.content_rejects.fetch_add(1, std::memory_order_relaxed);
        }
        return accepted;
      };
    }
    hooks.on_mail = [this](smtp::Envelope&& envelope) {
      DeliverEnvelope(std::move(envelope));
    };
    auto session = smtp::ServerSession::ResumeFromHandoff(
        cfg_.session, std::move(hooks), task->payload);
    if (!session.ok()) {
      SAMS_LOG(kError) << "resume failed: " << session.error().ToString();
      SessionDone();
      continue;  // drop the connection (task->fd closes)
    }
    if (trace_ != nullptr && session->handoff_trace_id() != 0) {
      // Continue the master-side trace: same session id, kHandoff
      // stage opened at the master's handoff timestamp so the span
      // covers the actual descriptor transfer.
      session->AttachTracer(trace_, &util::MonotonicNanos,
                            session->handoff_trace_id(), obs::Stage::kHandoff,
                            session->handoff_trace_start_ns());
    }
    // Process any bytes the client pipelined past the handoff point,
    // then continue with blocking reads until QUIT/EOF.
    session->Feed("");
    FinishSession(*session, fd);
    SessionDone();
  }
}

}  // namespace sams::mta
