#include "mta/smtp_server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>

#include "fault/injector.h"
#include "util/logging.h"
#include "util/time.h"

namespace sams::mta {
namespace {

// Restores blocking mode on a descriptor the master had non-blocking.
void SetBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
}

void SleepMs(int millis) {
  struct timespec ts;
  ts.tv_sec = millis / 1000;
  ts.tv_nsec = static_cast<long>(millis % 1000) * 1'000'000L;
  ::nanosleep(&ts, nullptr);
}

// Event-log records carry the /24, not the address: enough to spot a
// botnet range, anonymized enough to share logs.
std::string Peer24(const std::string& ip) {
  const auto parsed = util::Ipv4::Parse(ip);
  return parsed ? util::Prefix24(*parsed).ToString() : ip;
}

}  // namespace

// Per-connection state in a fork-after-trust shard.
struct SmtpServer::MasterConn {
  util::UniqueFd fd;
  std::unique_ptr<smtp::ServerSession> session;
  bool closed = false;
  // Pregreet test state: banner withheld until the timer fires; any
  // bytes before that mark the client as an early talker.
  bool banner_sent = true;   // false while the pregreet timer is armed
  bool pregreeted = false;
  // Scored mode keeps the early bytes so the dialog stays coherent
  // after the late banner: the client already sent its commands and is
  // waiting on replies, so dropping them would wedge the session it
  // was just allowed to keep. Bounded — a blast past the cap is truncated.
  std::string pregreet_buf;
  util::UniqueFd pregreet_timer;
  // Reaper bookkeeping (monotonic ns): slow-loris sessions are evicted
  // on inactivity, and every pre-trust session has a hard deadline.
  std::int64_t accepted_ns = 0;
  std::int64_t last_activity_ns = 0;
  // Guards async DNSBL callbacks across fd reuse: a verdict for a
  // closed connection whose fd number was re-adopted must not touch
  // the newcomer.
  std::uint64_t gen = 0;
  // Async DNSBL verdict state (all touched on the shard loop only).
  // dnsbl_ip doubles as the reputation-scored address, so the
  // dnsbl_ip_mapper bench seam feeds both subsystems.
  util::Ipv4 dnsbl_ip;
  bool dnsbl_pending = false;       // lookup launched, verdict outstanding
  bool dnsbl_have_verdict = false;
  bool dnsbl_blacklisted = false;
  bool dnsbl_degraded = false;      // verdict produced while the list
                                    // was unreachable (fail-open)
  std::int64_t dnsbl_begin_ns = 0;  // when the lookup launched
  std::int64_t dnsbl_rcpt_ns = 0;   // when the first RCPT began waiting
  // Reputation feature clocks: banner emission and the client's first
  // post-banner bytes. Their gap below min_cmd_gap_ns marks a
  // fire-and-forget sender that never waited for the 220.
  std::int64_t banner_ns = -1;
  std::int64_t first_cmd_ns = -1;
  // Stall watchdog: a stuck session is reported once, not every tick.
  bool stall_logged = false;
  // Reply-path backpressure (all touched on the shard loop only): when
  // a reply send hits EAGAIN — a slow talker whose receive window is
  // full — the remainder parks here and EPOLLOUT is armed instead of
  // aborting the session or blocking the reactor. Bounded: a peer that
  // never drains is closed once the buffer cap is blown.
  std::string outbuf;
  std::size_t outbuf_off = 0;
  bool want_write = false;          // EPOLLOUT currently armed
  bool close_when_flushed = false;  // session over; bytes still queued
  bool delegate_when_flushed = false;  // trust granted mid-backpressure
};

// One pre-trust reactor: an event loop on its own thread, plus (in
// SO_REUSEPORT mode) its own listener on the shared port.
struct SmtpServer::Shard {
  int index = 0;
  std::unique_ptr<net::EventLoop> loop;
  util::UniqueFd listener;  // invalid in the handoff-fallback mode
  std::thread thread;
  std::atomic<int> sessions{0};            // open pre-trust sessions
  std::atomic<std::uint64_t> accepted{0};  // connections ever adopted
  std::atomic<std::uint64_t> sheds{0};     // per-shard-gate 421s
  std::atomic<std::uint64_t> pregreets{0};  // early talkers detected here
  // Set by ShardLoop before Run(); fallback accept tasks posted onto
  // the loop call it (on the loop thread) to adopt a connection.
  std::function<void(net::Accepted&&)> adopt;
  // EMFILE interplay (loop thread only): the edge-triggered listener
  // saw a persistent accept error, so connections already completed in
  // its queue will never produce another edge. close_conn re-drains via
  // drain_accept as soon as a session frees a descriptor — accepted
  // sessions keep their fds; the backlog waits for capacity, not for
  // the next SYN.
  bool accept_stalled = false;
  std::function<void()> drain_accept;
  // Receive-buffer arena for this shard's read path (loop thread only).
  // Chunks pinned by in-flight DATA spans recycle here when released.
  net::BufferPool pool;
};

SmtpServer::SmtpServer(RealServerConfig cfg, RecipientDb recipients,
                       mfs::MailStore& store)
    : cfg_(std::move(cfg)), recipients_(std::move(recipients)), store_(store) {
  // One knob drives the whole ladder: pooled receive buffers here,
  // span-mode decoding in the session, vectored staging in the store.
  cfg_.session.zero_copy_data = cfg_.pooled_data_path;
  if (cfg_.dnsbl.enabled) {
    dnsbl_service_ = std::make_unique<dnsbl::AsyncDnsblService>(cfg_.dnsbl);
  }
  if (cfg_.reputation.enabled) {
    rep_engine_ = std::make_unique<rep::ReputationEngine>(cfg_.reputation);
  }
}

SmtpServer::~SmtpServer() { Stop(); }

bool SmtpServer::DeliverEnvelope(smtp::Envelope&& envelope) {
  const std::size_t n_mailboxes = envelope.rcpt_to.size();
  if (queue_) {
    // Durable path: spool and ack; the queue manager delivers.
    if (envelope.has_parts()) {
      // The spool writes one contiguous record; materialize the spans
      // (and drop their pins) before handing the envelope over.
      envelope.body = envelope.FlattenedBody();
      envelope.body_parts.clear();
      envelope.body_pins.clear();
    }
    const util::Error err = queue_->Enqueue(envelope);
    if (!err.ok()) {
      SAMS_LOG(kError) << "spool failed: " << err.ToString();
      stats_.delivery_errors.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    stats_.mails_delivered.fetch_add(1, std::memory_order_relaxed);
    stats_.mailbox_deliveries.fetch_add(n_mailboxes,
                                        std::memory_order_relaxed);
    return true;
  }
  std::vector<std::string> mailboxes;
  mailboxes.reserve(envelope.rcpt_to.size());
  for (const smtp::Address& rcpt : envelope.rcpt_to) {
    mailboxes.push_back(RecipientDb::MailboxName(rcpt));
  }
  mfs::MailId id;
  {
    std::lock_guard<std::mutex> lock(id_mutex_);
    id = mfs::MailId::Generate(id_rng_);
  }
  std::lock_guard<std::mutex> lock(store_mutex_);
  const util::Error err =
      envelope.has_parts()
          ? store_.DeliverParts(
                id,
                std::span<const std::string_view>(envelope.body_parts),
                mailboxes)
          : store_.Deliver(id, envelope.body, mailboxes);
  if (!err.ok()) {
    SAMS_LOG(kError) << "delivery failed: " << err.ToString();
    stats_.delivery_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  stats_.mails_delivered.fetch_add(1, std::memory_order_relaxed);
  stats_.mailbox_deliveries.fetch_add(mailboxes.size(),
                                      std::memory_order_relaxed);
  return true;
}

void SmtpServer::BindObservability(obs::Registry& registry,
                                   obs::TraceSink* sink) {
  registry_ = &registry;
  trace_ = sink;
  const obs::Labels arch = {
      {"arch", cfg_.architecture == Architecture::kForkAfterTrust
                   ? "fork-after-trust"
                   : "thread-per-connection"}};
  auto* conns = &registry.GetCounter("sams_smtp_connections_total",
                                     "client connections accepted", arch);
  auto* mails = &registry.GetCounter("sams_smtp_mails_delivered_total",
                                     "mails accepted and made durable", arch);
  auto* mailbox = &registry.GetCounter(
      "sams_smtp_mailbox_deliveries_total",
      "mailbox writes (mails x valid recipients)", arch);
  auto* rejected = &registry.GetCounter("sams_smtp_rejected_rcpts_total",
                                        "RCPT commands answered 550", arch);
  auto* content = &registry.GetCounter(
      "sams_smtp_content_rejects_total",
      "mails 554-rejected by the post-DATA body test", arch);
  auto* pregreet = &registry.GetCounter(
      "sams_smtp_pregreet_rejects_total",
      "early talkers rejected before the banner", arch);
  auto* delegations = &registry.GetCounter(
      "sams_smtp_delegations_total",
      "fork-after-trust handoffs from master to worker", arch);
  auto* master_closed = &registry.GetCounter(
      "sams_smtp_master_closed_total",
      "sessions that never left their master shard", arch);
  auto* errors = &registry.GetCounter("sams_smtp_delivery_errors_total",
                                      "store deliveries that failed", arch);
  auto* reaped = &registry.GetCounter(
      "sams_smtp_idle_reaped_total",
      "master sessions 421-evicted on idle/deadline", arch);
  auto* sheds = &registry.GetCounter(
      "sams_smtp_overload_sheds_total",
      "connections 421-shed at accept by the overload gate", arch);
  auto* deaths = &registry.GetCounter(
      "sams_smtp_worker_deaths_total",
      "delegation channels retired after a worker died", arch);
  auto* requeues = &registry.GetCounter(
      "sams_smtp_requeued_delegations_total",
      "delegations retried on a live worker after a death", arch);
  auto* accept_errors = &registry.GetCounter(
      "sams_smtp_accept_errors_seen_total",
      "accept() failures (see sams_smtp_accept_errors_total for errno)",
      arch);
  auto* inflight = &registry.GetGauge(
      "sams_smtp_inflight_sessions", "sessions accepted and not yet done",
      arch);
  auto* dnsbl_rejects = &registry.GetCounter(
      "sams_smtp_dnsbl_rejects_total",
      "clients 554-rejected at RCPT by the DNSBL verdict", arch);
  auto* dnsbl_deferred = &registry.GetCounter(
      "sams_smtp_dnsbl_deferred_rcpts_total",
      "first-RCPT replies that waited for an in-flight DNS round", arch);
  auto* stalled = &registry.GetCounter(
      "sams_smtp_stalled_sessions_total",
      "sessions the stall watchdog flagged as stuck in one stage", arch);
  auto* rep_rejects = &registry.GetCounter(
      "sams_smtp_rep_rejects_total",
      "clients 554-rejected at RCPT by the reputation score", arch);
  auto* rep_greylisted = &registry.GetCounter(
      "sams_smtp_rep_greylisted_total",
      "first RCPTs answered 450 by the reputation gate", arch);
  auto* pregreet_scored = &registry.GetCounter(
      "sams_smtp_pregreet_scored_total",
      "early talkers scored by the reputation gate instead of reaped",
      arch);
  auto* reply_backpressured = &registry.GetCounter(
      "sams_smtp_reply_backpressure_total",
      "reply sends that hit EAGAIN and parked in the outbound buffer",
      arch);
  auto* reply_overflow = &registry.GetCounter(
      "sams_smtp_reply_overflow_closed_total",
      "sessions aborted because the outbound reply buffer cap was blown",
      arch);
  auto* accept_redrains = &registry.GetCounter(
      "sams_smtp_accept_redrains_total",
      "EMFILE-stalled accept queues re-drained after a session closed",
      arch);
  auto* read_timeouts = &registry.GetCounter(
      "sams_smtp_worker_read_timeouts_total",
      "post-trust sessions 421-closed on a read timeout or deadline",
      arch);
  registry.AddCollector([this, conns, mails, mailbox, rejected, content,
                         pregreet, delegations, master_closed, errors, reaped,
                         sheds, deaths, requeues, accept_errors, inflight,
                         dnsbl_rejects, dnsbl_deferred, stalled, rep_rejects,
                         rep_greylisted, pregreet_scored, reply_backpressured,
                         reply_overflow, accept_redrains, read_timeouts] {
    read_timeouts->Overwrite(
        stats_.worker_read_timeouts.load(std::memory_order_relaxed));
    reply_backpressured->Overwrite(
        stats_.reply_backpressured.load(std::memory_order_relaxed));
    reply_overflow->Overwrite(
        stats_.reply_overflow_closed.load(std::memory_order_relaxed));
    accept_redrains->Overwrite(
        stats_.accept_redrains.load(std::memory_order_relaxed));
    stalled->Overwrite(
        stats_.stalled_sessions.load(std::memory_order_relaxed));
    rep_rejects->Overwrite(stats_.rep_rejects.load(std::memory_order_relaxed));
    rep_greylisted->Overwrite(
        stats_.rep_greylisted.load(std::memory_order_relaxed));
    pregreet_scored->Overwrite(
        stats_.pregreet_scored.load(std::memory_order_relaxed));
    dnsbl_rejects->Overwrite(
        stats_.dnsbl_rejects.load(std::memory_order_relaxed));
    dnsbl_deferred->Overwrite(
        stats_.dnsbl_deferred.load(std::memory_order_relaxed));
    reaped->Overwrite(stats_.idle_reaped.load(std::memory_order_relaxed));
    sheds->Overwrite(stats_.overload_sheds.load(std::memory_order_relaxed));
    deaths->Overwrite(stats_.worker_deaths.load(std::memory_order_relaxed));
    requeues->Overwrite(
        stats_.requeued_delegations.load(std::memory_order_relaxed));
    accept_errors->Overwrite(
        stats_.accept_errors.load(std::memory_order_relaxed));
    inflight->Set(
        static_cast<double>(inflight_.load(std::memory_order_relaxed)));
    conns->Overwrite(stats_.connections.load(std::memory_order_relaxed));
    mails->Overwrite(stats_.mails_delivered.load(std::memory_order_relaxed));
    mailbox->Overwrite(
        stats_.mailbox_deliveries.load(std::memory_order_relaxed));
    rejected->Overwrite(stats_.rejected_rcpts.load(std::memory_order_relaxed));
    content->Overwrite(stats_.content_rejects.load(std::memory_order_relaxed));
    pregreet->Overwrite(
        stats_.pregreet_rejects.load(std::memory_order_relaxed));
    delegations->Overwrite(stats_.delegations.load(std::memory_order_relaxed));
    master_closed->Overwrite(
        stats_.master_closed.load(std::memory_order_relaxed));
    errors->Overwrite(stats_.delivery_errors.load(std::memory_order_relaxed));
  });
  // Per-shard health: open sessions, total accepts, per-shard-gate
  // sheds, and the spread between the busiest and idlest shard (a
  // persistent imbalance means the kernel's SYN hashing or the
  // round-robin fallback is starving a reactor).
  registry.AddCollector([this, &registry] {
    if (shards_.empty()) return;
    int busiest = 0;
    int idlest = 0;
    bool first = true;
    for (const auto& shard : shards_) {
      const int open = shard->sessions.load(std::memory_order_relaxed);
      const obs::Labels labels = {{"shard", std::to_string(shard->index)}};
      registry.GetGauge("sams_smtp_shard_sessions",
                        "open pre-trust sessions per master shard", labels)
          .Set(static_cast<double>(open));
      registry.GetCounter("sams_smtp_shard_accepted_total",
                          "connections adopted by this shard", labels)
          .Overwrite(shard->accepted.load(std::memory_order_relaxed));
      registry.GetCounter(
              "sams_smtp_shard_sheds_total",
              "connections 421-shed by this shard's per-shard gate", labels)
          .Overwrite(shard->sheds.load(std::memory_order_relaxed));
      // Split of the global pregreet total: which reactor the early
      // talkers are landing on (a skewed SYN hash concentrates them).
      registry.GetCounter("sams_smtp_shard_pregreet_total",
                          "early talkers detected by this shard", labels)
          .Overwrite(shard->pregreets.load(std::memory_order_relaxed));
      busiest = first ? open : std::max(busiest, open);
      idlest = first ? open : std::min(idlest, open);
      first = false;
    }
    registry.GetGauge("sams_smtp_shard_imbalance",
                      "open sessions: busiest shard minus idlest shard")
        .Set(static_cast<double>(busiest - idlest));
  });
  if (rep_engine_) rep_engine_->BindMetrics(registry);
  if (dnsbl_service_) {
    dnsbl_service_->BindMetrics(registry);
    // Overlap accounting: `hidden` is the slice of each DNS round that
    // ran concurrently with the SMTP dialog (latency − RCPT stall);
    // `stall` is what the client actually waited at RCPT. A healthy
    // overlapped pipeline shows hidden ≈ latency and stall ≈ 0.
    dnsbl_hidden_ms_ = &registry.GetHistogram(
        "sams_smtp_dnsbl_overlap_hidden_ms",
        "DNS round latency hidden behind the SMTP dialog",
        obs::HistogramSpec{0.05, 2.0, 20}, arch);
    dnsbl_stall_ms_ = &registry.GetHistogram(
        "sams_smtp_dnsbl_rcpt_stall_ms",
        "time the first RCPT reply waited on the DNSBL verdict",
        obs::HistogramSpec{0.05, 2.0, 20}, arch);
  }
  store_.BindMetrics(registry);
}

void SmtpServer::LogOperational(const char* event, obs::EventSeverity severity,
                                std::function<void(obs::EventRecord&)> fill) {
  if (event_log_ == nullptr) return;
  obs::EventRecord record("smtp", event, severity);
  if (fill) fill(record);
  event_log_->Emit(record);
}

void SmtpServer::LogSessionOutcome(const smtp::ServerSession& session,
                                   int shard, const char* transport) {
  if (event_log_ == nullptr) return;
  const smtp::SessionStats& s = session.stats();
  // Outcome precedence: an actual delivery beats everything; then the
  // rejection reasons in pipeline order; a clean QUIT with nothing
  // delivered is "quit"; anything else died mid-dialog.
  const char* verdict = "unfinished";
  if (s.mails_delivered > 0) {
    verdict = "delivered";
  } else if (s.gate_rejects > 0) {
    // Same 554, different judge: the binary DNSBL gate or the weighted
    // reputation score (which folds the DNSBL verdict in).
    verdict = rep_engine_ ? "rep_reject" : "dnsbl_reject";
  } else if (s.content_rejects > 0) {
    verdict = "content_reject";
  } else if (s.rejected_rcpts > 0 && s.accepted_rcpts == 0 &&
             session.state() == smtp::SessionState::kClosed) {
    verdict = "bounced";
  } else if (s.greylisted_rcpts > 0 && s.accepted_rcpts == 0) {
    verdict = "greylisted";
  } else if (session.state() == smtp::SessionState::kClosed) {
    verdict = "quit";
  }
  // Lazy Emit: under a session storm the token bucket drops most of
  // these, and the ~10-field record (peer /24 formatting included) must
  // not be built for a line that is never written.
  event_log_->Emit(
      "smtp", "session", obs::EventSeverity::kInfo,
      [&](obs::EventRecord& record) {
        record.Int("id", static_cast<std::int64_t>(session.trace_id()))
            .Str("verdict", verdict)
            .Str("transport", transport)
            .Str("peer24", Peer24(session.client_ip()))
            .Int("commands", static_cast<std::int64_t>(s.commands))
            .Int("bytes_in", static_cast<std::int64_t>(s.bytes_in))
            .Int("rcpts", static_cast<std::int64_t>(s.accepted_rcpts));
        if (s.greylisted_rcpts > 0) {
          record.Int("greylisted",
                     static_cast<std::int64_t>(s.greylisted_rcpts));
        }
        if (shard >= 0) record.Int("shard", shard);
        // Per-stage wall time, from the session's local accumulators —
        // no trace-ring scan on the hot path.
        const auto& stage_ns = session.stage_durations_ns();
        for (std::size_t i = 0; i < stage_ns.size(); ++i) {
          if (stage_ns[i] <= 0) continue;
          record.Num(std::string("ms_") +
                         obs::StageName(static_cast<obs::Stage>(i)),
                     static_cast<double>(stage_ns[i]) / 1e6);
        }
      });
}

int SmtpServer::LiveWorkers() const {
  std::lock_guard<std::mutex> lock(delegate_mutex_);
  int live = 0;
  for (const util::UniqueFd& channel : worker_channels_) {
    if (channel.valid()) ++live;
  }
  return live;
}

std::vector<SubsystemHealth> SmtpServer::Health() const {
  std::vector<SubsystemHealth> health;
  const bool running = running_.load(std::memory_order_acquire);
  health.push_back({"server", running, running ? "" : "not running"});
  if (cfg_.architecture == Architecture::kForkAfterTrust) {
    const int expected = std::max(1, cfg_.num_shards);
    const int up = num_shards();
    health.push_back({"shards", !running || up == expected,
                      std::to_string(up) + "/" + std::to_string(expected) +
                          " reactors up"});
    const int live = LiveWorkers();
    health.push_back({"workers", !running || live > 0,
                      std::to_string(live) + "/" +
                          std::to_string(cfg_.worker_count) +
                          " delegation channels live"});
    if (dnsbl_service_) {
      const int bound = dnsbl_shards_bound_.load(std::memory_order_relaxed);
      health.push_back({"dnsbl", !running || bound == up,
                        std::to_string(bound) + "/" + std::to_string(up) +
                            " shard pipelines bound"});
    }
    if (rep_engine_) {
      // Always ok: a dark history store fails open (plain DNSBL gate),
      // so reputation degrades service quality, never availability.
      const auto& rs = rep_engine_->stats();
      health.push_back(
          {"reputation", true,
           std::to_string(rep_engine_->history_size()) + " buckets, " +
               std::to_string(rs.degraded.load(std::memory_order_relaxed)) +
               " degraded evals"});
    }
  }
  {
    const util::Error store_err = store_.HealthCheck();
    health.push_back(
        {"store", store_err.ok(),
         store_err.ok() ? std::string(store_.name()) : store_err.ToString()});
  }
  if (queue_) {
    health.push_back({"queue", true,
                      "depth " + std::to_string(queue_->depth())});
  }
  return health;
}

util::Result<std::uint16_t> SmtpServer::Start() {
  SAMS_CHECK(!running_.load()) << "server already started";
  shards_.clear();
  handoff_fallback_ = false;
  std::uint16_t bound_port = 0;

  const bool sharded =
      cfg_.architecture == Architecture::kForkAfterTrust;
  const int num_shards = std::max(1, cfg_.num_shards);
  if (sharded) {
    // Preferred mode: one SO_REUSEPORT listener per shard, all bound
    // to the same port; the kernel hashes incoming SYNs across them so
    // no accept lock or handoff is needed. The fault point lets tests
    // force the fallback path on kernels that do support the option.
    bool reuseport_ok = SAMS_FAULT_ERROR("mta.shard.reuseport").ok();
    if (reuseport_ok) {
      net::ListenOptions options;
      options.backlog = cfg_.listen_backlog;
      options.reuse_port = true;
      for (int i = 0; i < num_shards; ++i) {
        auto listener =
            net::TcpListen(i == 0 ? cfg_.port : bound_port, options);
        if (!listener.ok()) {
          SAMS_LOG(kWarn) << "shard " << i << " SO_REUSEPORT listener: "
                          << listener.error().ToString()
                          << " — falling back to fd handoff";
          reuseport_ok = false;
          break;
        }
        if (i == 0) {
          auto port = net::LocalPort(listener->get());
          if (!port.ok()) return port.error();
          bound_port = *port;
        }
        auto shard = std::make_unique<Shard>();
        shard->index = i;
        shard->listener = std::move(*listener);
        shards_.push_back(std::move(shard));
      }
      if (!reuseport_ok) shards_.clear();
    }
    handoff_fallback_ = !reuseport_ok;
    if (handoff_fallback_) {
      // Fallback: a single conventional listener plus an accept thread
      // that round-robins accepted descriptors into the shard loops.
      auto listener = net::TcpListen(cfg_.port, cfg_.listen_backlog);
      if (!listener.ok()) return listener.error();
      listener_ = std::move(*listener);
      auto port = net::LocalPort(listener_.get());
      if (!port.ok()) return port.error();
      bound_port = *port;
      for (int i = 0; i < num_shards; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->index = i;
        shards_.push_back(std::move(shard));
      }
    }
    for (auto& shard : shards_) {
      auto loop = net::EventLoop::Create(cfg_.io_backend);
      if (!loop.ok()) return loop.error();
      shard->loop = std::move(*loop);
      if (registry_ != nullptr) shard->loop->BindMetrics(*registry_);
    }
    if (!shards_.empty()) {
      SAMS_LOG(kInfo) << "reactor backend: " << shards_[0]->loop->backend_name();
    }
  } else {
    auto listener = net::TcpListen(cfg_.port, cfg_.listen_backlog);
    if (!listener.ok()) return listener.error();
    listener_ = std::move(*listener);
    auto port = net::LocalPort(listener_.get());
    if (!port.ok()) return port.error();
    bound_port = *port;
  }

  if (!cfg_.spool_dir.empty()) {
    QueueConfig queue_cfg;
    queue_cfg.spool_dir = cfg_.spool_dir;
    queue_ = std::make_unique<QueueManager>(queue_cfg, store_);
    if (registry_ != nullptr) queue_->BindMetrics(*registry_);
    SAMS_RETURN_IF_ERROR(queue_->Start());
    const std::uint64_t recovered =
        queue_->stats().recovered.load(std::memory_order_relaxed);
    if (recovered > 0) {
      LogOperational("queue_recovered", obs::EventSeverity::kInfo,
                     [recovered](obs::EventRecord& r) {
                       r.Int("mails", static_cast<std::int64_t>(recovered));
                     });
    }
  }

  running_.store(true, std::memory_order_release);
  accepting_.store(true, std::memory_order_release);
  if (!sharded) {
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  } else {
    // Worker pool with one UNIX-domain delegation channel each (§5.3),
    // shared by every shard.
    for (int i = 0; i < cfg_.worker_count; ++i) {
      auto pair = util::MakeSocketPair();
      if (!pair.ok()) return pair.error();
      worker_channels_.push_back(std::move(pair->first));
      const int worker_fd = pair->second.Release();
      worker_threads_.emplace_back(
          [this, worker_fd] { WorkerLoop(worker_fd); });
    }
    for (auto& shard : shards_) {
      Shard* raw = shard.get();
      shard->thread = std::thread([this, raw] { ShardLoop(*raw); });
    }
    if (handoff_fallback_) {
      handoff_thread_ = std::thread([this] { HandoffAcceptLoop(); });
    }
  }
  return bound_port;
}

int SmtpServer::Drain(int grace_ms) {
  if (!running_.load(std::memory_order_acquire)) return 0;
  // Refuse new work: the listeners stop accepting but every session
  // already admitted keeps running.
  accepting_.store(false, std::memory_order_release);
  if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
  for (auto& shard : shards_) {
    if (shard->listener.valid()) {
      ::shutdown(shard->listener.get(), SHUT_RDWR);
    }
  }
  const std::int64_t deadline =
      util::MonotonicNanos() + static_cast<std::int64_t>(grace_ms) * 1'000'000;
  while (inflight_.load(std::memory_order_relaxed) > 0 &&
         util::MonotonicNanos() < deadline) {
    struct timespec ts{0, 5'000'000};  // 5 ms
    ::nanosleep(&ts, nullptr);
  }
  const int leftover = inflight_.load(std::memory_order_relaxed);
  if (leftover > 0) {
    SAMS_LOG(kWarn) << "drain grace expired with " << leftover
                    << " sessions still open";
  }
  if (queue_) queue_->Flush();  // every acked mail reaches its mailbox
  Stop();
  return leftover;
}

bool SmtpServer::AdmitSession(int fd) {
  const int now = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cfg_.max_inflight_sessions > 0 && now > cfg_.max_inflight_sessions) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    stats_.overload_sheds.fetch_add(1, std::memory_order_relaxed);
    static constexpr char kShed[] =
        "421 4.3.2 Service overloaded, try again later\r\n";
    (void)util::SendAll(fd, kShed, sizeof(kShed) - 1);
    LogOperational("overload_shed", obs::EventSeverity::kWarn,
                   [this](obs::EventRecord& r) {
                     r.Int("inflight", inflight());
                     r.Int("limit", cfg_.max_inflight_sessions);
                   });
    return false;
  }
  return true;
}

void SmtpServer::Stop() {
  accepting_.store(false, std::memory_order_release);
  if (!running_.exchange(false)) return;
  // Shutting the listeners down unblocks accept(); stopping the loops
  // unblocks epoll_wait; closing the delegation channels unblocks the
  // workers.
  if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
  for (auto& shard : shards_) {
    if (shard->listener.valid()) {
      ::shutdown(shard->listener.get(), SHUT_RDWR);
    }
    if (shard->loop) shard->loop->Stop();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (handoff_thread_.joinable()) handoff_thread_.join();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
    shard->listener.Reset();
  }
  listener_.Reset();
  {
    std::lock_guard<std::mutex> lock(delegate_mutex_);
    worker_channels_.clear();  // EOF to workers
  }
  for (std::thread& worker : worker_threads_) {
    if (worker.joinable()) worker.join();
  }
  worker_threads_.clear();
  std::unordered_map<std::uint64_t, std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(conn_threads_);
    finished_conns_.clear();
  }
  for (auto& [id, conn] : conns) {
    if (conn.joinable()) conn.join();
  }
  if (queue_) {
    queue_->Flush();  // drain the incoming queue before shutdown
    queue_->Stop();
  }
}

std::vector<int> SmtpServer::ShardSessions() const {
  std::vector<int> sessions;
  sessions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    sessions.push_back(shard->sessions.load(std::memory_order_relaxed));
  }
  return sessions;
}

std::vector<std::uint64_t> SmtpServer::ShardAccepted() const {
  std::vector<std::uint64_t> accepted;
  accepted.reserve(shards_.size());
  for (const auto& shard : shards_) {
    accepted.push_back(shard->accepted.load(std::memory_order_relaxed));
  }
  return accepted;
}

std::vector<std::uint64_t> SmtpServer::ShardPregreets() const {
  std::vector<std::uint64_t> pregreets;
  pregreets.reserve(shards_.size());
  for (const auto& shard : shards_) {
    pregreets.push_back(shard->pregreets.load(std::memory_order_relaxed));
  }
  return pregreets;
}

int SmtpServer::ConnThreadHandles() const {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  return static_cast<int>(conn_threads_.size());
}

int SmtpServer::OnAcceptError(int err, int prev_backoff_ms) {
  stats_.accept_errors.fetch_add(1, std::memory_order_relaxed);
  if (registry_ != nullptr) {
    registry_
        ->GetCounter("sams_smtp_accept_errors_total",
                     "accept() failures by errno",
                     {{"errno", net::AcceptErrnoName(err)}})
        .Inc();
  }
  // Transient per-connection failures: the aborted connection is gone,
  // the listener is healthy — retry immediately.
  if (err == EINTR || err == ECONNABORTED || err == EPROTO) return 0;
  // Everything else (EMFILE/ENFILE/ENOBUFS/ENOMEM fd-or-memory
  // exhaustion, or an unexpected hard error) persists across retries:
  // capped exponential backoff so the accept path cannot busy-spin a
  // core while the kernel keeps refusing.
  const int backoff_ms =
      prev_backoff_ms == 0 ? 10 : std::min(prev_backoff_ms * 2, 1'000);
  LogOperational("accept_backoff", obs::EventSeverity::kWarn,
                 [err, backoff_ms](obs::EventRecord& r) {
                   r.Str("errno", net::AcceptErrnoName(err));
                   r.Int("backoff_ms", backoff_ms);
                 });
  return backoff_ms;
}

// --- thread-per-connection (Figure 6) ----------------------------------

void SmtpServer::ReapConnThreads() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    done.reserve(finished_conns_.size());
    for (const std::uint64_t id : finished_conns_) {
      auto it = conn_threads_.find(id);
      if (it == conn_threads_.end()) continue;
      done.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
    finished_conns_.clear();
  }
  // Joins outside the lock; these threads have already pushed their id
  // and are exiting, so each join returns immediately.
  for (std::thread& conn : done) {
    if (conn.joinable()) conn.join();
  }
}

void SmtpServer::AcceptLoop() {
  int backoff_ms = 0;
  while (running_.load(std::memory_order_acquire) &&
         accepting_.load(std::memory_order_acquire)) {
    // Join connection threads that have finished since the last pass,
    // so the handle table tracks open connections instead of growing
    // by one per connection served.
    ReapConnThreads();
    if (backoff_ms > 0) {
      SleepMs(backoff_ms);
      if (!running_.load(std::memory_order_acquire) ||
          !accepting_.load(std::memory_order_acquire)) {
        break;
      }
    }
    int err = 0;
    net::Accepted accepted;
    bool have_conn = false;
    // Chaos hook: a triggered "mta.accept" policy simulates accept()
    // failing with fd exhaustion (clients wait in the backlog).
    if (SAMS_FAULT_ERROR("mta.accept").ok()) {
      auto result = net::TcpAccept(listener_.get(), &err);
      if (result.ok()) {
        accepted = std::move(*result);
        have_conn = true;
      }
    } else {
      err = EMFILE;
    }
    if (!have_conn) {
      if (!running_.load() || !accepting_.load()) break;
      backoff_ms = OnAcceptError(err, backoff_ms);
      continue;
    }
    backoff_ms = 0;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    if (!AdmitSession(accepted.fd.get())) continue;  // shed; fd closes
    const std::uint64_t conn_id = next_conn_id_++;
    std::lock_guard<std::mutex> lock(conn_mutex_);
    auto [it, inserted] = conn_threads_.try_emplace(conn_id);
    it->second = std::thread(
        [this, conn_id, fd = std::move(accepted.fd),
         ip = std::move(accepted.peer_ip)]() mutable {
          HandleConnection(conn_id, std::move(fd), std::move(ip));
        });
  }
}

void SmtpServer::HandleConnection(std::uint64_t conn_id, util::UniqueFd fd,
                                  std::string peer_ip) {
  (void)net::SetRecvTimeout(fd.get(), cfg_.recv_timeout_ms);
  if (cfg_.send_timeout_ms > 0) {
    (void)net::SetSendTimeout(fd.get(), cfg_.send_timeout_ms);
  }
  bool quit = false;
  smtp::ServerSession::Hooks hooks;
  const int raw = fd.get();
  hooks.send = [raw](std::string bytes) {
    // A failed send (peer reset, SO_SNDTIMEO expiry) aborts the
    // session: ServerSession drops to kClosed and FinishSession exits
    // instead of parsing replies for a dead peer until read timeout.
    return util::SendAll(raw, bytes.data(), bytes.size()).ok();
  };
  hooks.validate_rcpt = [this](const smtp::Address& addr) {
    const bool ok = recipients_.IsValid(addr);
    if (!ok) stats_.rejected_rcpts.fetch_add(1, std::memory_order_relaxed);
    return ok;
  };
  if (cfg_.content_check) {
    hooks.content_check = [this](const smtp::Envelope& envelope) {
      const bool accepted = cfg_.content_check(envelope);
      if (!accepted) {
        stats_.content_rejects.fetch_add(1, std::memory_order_relaxed);
      }
      return accepted;
    };
  }
  hooks.on_mail = [this](smtp::Envelope&& envelope) {
    DeliverEnvelope(std::move(envelope));
  };
  hooks.on_quit = [&quit] { quit = true; };
  smtp::ServerSession session(cfg_.session, std::move(hooks), peer_ip);
  if (trace_ != nullptr) {
    session.AttachTracer(
        trace_, &util::MonotonicNanos,
        trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  session.Start();
  FinishSession(session, fd.get());
  (void)quit;
  LogSessionOutcome(session, /*shard=*/-1, "thread");
  SessionDone();
  // Self-register for reaping: the accept loop joins this thread on
  // its next pass instead of hoarding the handle until Stop().
  std::lock_guard<std::mutex> lock(conn_mutex_);
  finished_conns_.push_back(conn_id);
}

void SmtpServer::FinishSession(smtp::ServerSession& session, int fd) {
  // Post-trust blocking read loop. Each read lands in a pooled chunk
  // whose pin rides any DATA spans the decoder emits, so body bytes
  // reach the store without an intermediate copy. errno is audited
  // explicitly: EINTR retries, SO_RCVTIMEO expiry (EAGAIN) and the
  // optional whole-session deadline say goodbye with a 421 instead of
  // silently dropping the peer, anything else is a dead connection.
  const std::int64_t deadline_ns =
      cfg_.worker_session_deadline_ms > 0
          ? util::MonotonicNanos() +
                static_cast<std::int64_t>(cfg_.worker_session_deadline_ms) *
                    1'000'000
          : 0;
  const auto say_421_and_count = [&] {
    static constexpr char kTimeout[] =
        "421 4.4.2 Idle timeout, closing transmission channel\r\n";
    // Count before sending: an observer that sees the 421 on the wire
    // must already see the counter.
    stats_.worker_read_timeouts.fetch_add(1, std::memory_order_relaxed);
    (void)util::SendAll(fd, kTimeout, sizeof(kTimeout) - 1);
  };
  while (running_.load(std::memory_order_acquire) &&
         session.state() != smtp::SessionState::kClosed) {
    if (deadline_ns > 0) {
      const std::int64_t left_ns = deadline_ns - util::MonotonicNanos();
      if (left_ns <= 0) {
        say_421_and_count();
        break;
      }
      struct pollfd pfd = {fd, POLLIN, 0};
      const int timeout_ms =
          static_cast<int>(std::min<std::int64_t>(left_ns / 1'000'000 + 1,
                                                  60'000));
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (pr == 0) continue;  // re-check deadline / running_
    }
    net::BufferPool::Buffer buf = worker_pool_.Acquire();
    const ssize_t n = ::read(fd, buf.data, buf.capacity);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: the client wedged mid-dialog. Tell it
        // why before hanging up rather than pinning this worker.
        say_421_and_count();
      }
      break;
    }
    if (n == 0) break;  // EOF
    session.FeedPinned(std::string_view(buf.data, static_cast<std::size_t>(n)),
                       buf.pin);
  }
}

// --- fork-after-trust (Figure 7), sharded ------------------------------

bool SmtpServer::DelegateToWorker(int fd, const std::string& payload) {
  // Round-robin over the LIVE workers. kUnavailable from the channel
  // (EPIPE — the worker died) retires that channel and requeues the
  // session on the next live worker; the client never notices. The
  // mutex serializes shards: a delegation frame must not interleave
  // with another shard's on the same channel, and channel retirement
  // must be seen consistently.
  std::lock_guard<std::mutex> lock(delegate_mutex_);
  bool saw_death = false;
  const std::size_t n_workers = worker_channels_.size();
  for (std::size_t tried = 0; tried < n_workers; ++tried) {
    const std::size_t worker = next_worker_++ % n_workers;
    if (!worker_channels_[worker].valid()) continue;  // retired earlier
    const util::Error err = util::SendFdWithPayload(
        worker_channels_[worker].get(), fd, payload);
    if (err.ok()) {
      stats_.delegations.fetch_add(1, std::memory_order_relaxed);
      if (saw_death) {
        stats_.requeued_delegations.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
    if (err.code() == util::ErrorCode::kUnavailable) {
      SAMS_LOG(kWarn) << "smtpd worker " << worker
                      << " died: " << err.ToString();
      worker_channels_[worker].Reset();
      stats_.worker_deaths.fetch_add(1, std::memory_order_relaxed);
      LogOperational("worker_death", obs::EventSeverity::kError,
                     [worker](obs::EventRecord& r) {
                       r.Int("worker", static_cast<std::int64_t>(worker));
                     });
      saw_death = true;
      continue;
    }
    SAMS_LOG(kError) << "delegation failed: " << err.ToString();
    break;
  }
  LogOperational("no_worker", obs::EventSeverity::kError,
                 [n_workers](obs::EventRecord& r) {
                   r.Int("channels", static_cast<std::int64_t>(n_workers));
                 });
  return false;
}

smtp::RcptGateDecision SmtpServer::GateVerdict(MasterConn& conn,
                                               const std::string& rcpt) {
  const bool listed = conn.dnsbl_have_verdict && conn.dnsbl_blacklisted;
  if (rep_engine_ == nullptr) {
    // Binary DNSBL gate: listed means 554, nothing else matters.
    if (!listed) return smtp::RcptGateDecision::kAccept;
    stats_.dnsbl_rejects.fetch_add(1, std::memory_order_relaxed);
    return smtp::RcptGateDecision::kReject;
  }
  rep::DialogFeatures features;
  features.dnsbl_listed = listed;
  features.dnsbl_degraded = conn.dnsbl_have_verdict && conn.dnsbl_degraded;
  features.pregreet = conn.pregreeted;
  const smtp::SessionStats& s = conn.session->stats();
  features.pipelined = static_cast<std::uint32_t>(s.pipelined_commands);
  features.helo_bare_ip =
      conn.session->helo_kind() == smtp::HeloKind::kBareIp;
  features.helo_malformed = s.helo_rejects > 0;
  features.syntax_errors = static_cast<std::uint32_t>(s.syntax_errors);
  features.bad_sequence = static_cast<std::uint32_t>(s.bad_sequence);
  if (conn.banner_ns >= 0 && conn.first_cmd_ns >= conn.banner_ns) {
    features.min_cmd_gap_ns = conn.first_cmd_ns - conn.banner_ns;
  }
  const rep::Evaluation eval = rep_engine_->Evaluate(
      conn.dnsbl_ip, features, conn.session->mail_from().ToString(), rcpt,
      util::MonotonicNanos());
  switch (eval.verdict) {
    case rep::Verdict::kAccept:
      return smtp::RcptGateDecision::kAccept;
    case rep::Verdict::kGreylist:
      stats_.rep_greylisted.fetch_add(1, std::memory_order_relaxed);
      return smtp::RcptGateDecision::kGreylist;
    case rep::Verdict::kReject:
      break;
  }
  stats_.rep_rejects.fetch_add(1, std::memory_order_relaxed);
  // A listed client still shows in the DNSBL ledger even though the
  // reputation score delivered the 554.
  if (listed) stats_.dnsbl_rejects.fetch_add(1, std::memory_order_relaxed);
  return smtp::RcptGateDecision::kReject;
}

namespace {
// Cap on a pre-trust session's queued reply bytes. SMTP replies are a
// few dozen bytes each, so a healthy dialog never comes close; a peer
// that advertises a zero window across 64 KiB of replies is a reply
// sink, not a slow link.
constexpr std::size_t kMaxReplyOutbuf = 64 * 1024;
}  // namespace

bool SmtpServer::SendOrBuffer(net::EventLoop& loop, int fd, MasterConn& conn,
                              std::string bytes) {
  if (conn.outbuf.empty()) {
    // Fast path: nothing queued, so ordering allows a direct attempt.
    auto sent = net::SendNonBlocking(fd, bytes.data(), bytes.size());
    if (!sent.ok()) return false;  // peer dead → session aborts
    if (*sent == bytes.size()) return true;
    bytes.erase(0, *sent);
    conn.outbuf_off = 0;
  } else if (conn.outbuf_off > 0) {
    // Compact the drained prefix before growing the queue.
    conn.outbuf.erase(0, conn.outbuf_off);
    conn.outbuf_off = 0;
  }
  if (conn.outbuf.size() + bytes.size() > kMaxReplyOutbuf) {
    stats_.reply_overflow_closed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  stats_.reply_backpressured.fetch_add(1, std::memory_order_relaxed);
  conn.outbuf += bytes;
  if (!conn.want_write) {
    conn.want_write = true;
    (void)loop.Modify(fd, EPOLLIN | EPOLLOUT | EPOLLET);
  }
  return true;
}

bool SmtpServer::FlushOutbuf(net::EventLoop& loop, int fd, MasterConn& conn) {
  while (conn.outbuf_off < conn.outbuf.size()) {
    auto sent = net::SendNonBlocking(fd, conn.outbuf.data() + conn.outbuf_off,
                                     conn.outbuf.size() - conn.outbuf_off);
    if (!sent.ok()) return false;
    if (*sent == 0) return true;  // still backpressured; EPOLLOUT re-fires
    conn.outbuf_off += *sent;
  }
  conn.outbuf.clear();
  conn.outbuf_off = 0;
  if (conn.want_write) {
    conn.want_write = false;
    (void)loop.Modify(fd, EPOLLIN | EPOLLET);
  }
  return true;
}

void SmtpServer::ShardLoop(Shard& shard) {
  // Connections keyed by fd; sessions run in this shard's event loop
  // until the first valid RCPT, then get shipped to a worker.
  std::unordered_map<int, std::unique_ptr<MasterConn>> conns;
  net::EventLoop* loop = shard.loop.get();

  // This shard's async DNSBL pipeline: its UDP socket and timer live on
  // this loop, so lookups progress interleaved with client events while
  // the verdict cache and singleflight table are shared with every
  // other shard via dnsbl_service_. Declared before the connection
  // lambdas; destroyed when this function returns, after Run() exits.
  std::unique_ptr<dnsbl::AsyncLookupPipeline> pipeline;
  if (dnsbl_service_ != nullptr) {
    pipeline =
        std::make_unique<dnsbl::AsyncLookupPipeline>(*dnsbl_service_, *loop);
    const util::Error err = pipeline->Init();
    if (!err.ok()) {
      SAMS_LOG(kWarn) << "shard " << shard.index
                      << " DNSBL pipeline disabled: " << err.ToString();
      pipeline.reset();
    } else {
      dnsbl_shards_bound_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  dnsbl::AsyncLookupPipeline* pipeline_raw = pipeline.get();
  std::uint64_t next_gen = 1;  // MasterConn::gen source (fd-reuse guard)

  auto close_conn = [this, &shard, &conns, loop](int fd) {
    auto it = conns.find(fd);
    if (it != conns.end() && it->second->session) {
      LogSessionOutcome(*it->second->session, shard.index, "master");
    }
    (void)loop->Remove(fd);
    conns.erase(fd);
    shard.sessions.fetch_sub(1, std::memory_order_relaxed);
    stats_.master_closed.fetch_add(1, std::memory_order_relaxed);
    SessionDone();
    if (shard.accept_stalled && shard.drain_accept) {
      // This close freed a descriptor; connections parked in the
      // listener's queue since the EMFILE edge get their chance now
      // instead of starving until the next SYN.
      shard.accept_stalled = false;
      stats_.accept_redrains.fetch_add(1, std::memory_order_relaxed);
      shard.drain_accept();
    }
  };

  auto delegate = [this, &shard, &conns, loop](int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    MasterConn& conn = *it->second;
    if (!conn.outbuf.empty()) {
      // The first RCPT's 250 (or earlier replies) are still queued
      // behind the peer's full receive window. Handing the fd to a
      // worker now would interleave its blocking writes with ours;
      // park the delegation until the flush path drains the buffer.
      conn.delegate_when_flushed = true;
      return;
    }
    conn.session->TraceHandoff();
    auto payload = conn.session->SerializeHandoff();
    bool handed_off = false;
    if (!payload.ok()) {
      SAMS_LOG(kWarn) << "handoff failed: " << payload.error().ToString();
    } else {
      handed_off = DelegateToWorker(fd, *payload);
      if (!handed_off) {
        static constexpr char kBusy[] =
            "421 4.3.2 No smtpd available, try again later\r\n";
        (void)util::SendAll(fd, kBusy, sizeof(kBusy) - 1);
      }
    }
    if (!handed_off) SessionDone();
    // On success the worker holds a duplicate now; drop the shard's
    // copy either way.
    (void)loop->Remove(fd);
    conns.erase(it);
    shard.sessions.fetch_sub(1, std::memory_order_relaxed);
  };

  // Ends a session whose dialog is over but whose final reply (221,
  // 554, ...) may still sit in the outbound buffer: closes immediately
  // when nothing is queued (or the peer is already gone), otherwise
  // defers to the flush path so the farewell actually reaches the wire.
  auto request_close = [&conns, close_conn](int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    MasterConn& conn = *it->second;
    if (!conn.outbuf.empty() && conn.session && !conn.session->peer_dead()) {
      conn.close_when_flushed = true;
      return;
    }
    close_conn(fd);
  };

  // Lands a DNSBL verdict on a connection. Always runs on this shard's
  // loop thread (inline from the pipeline, or Posted by another shard
  // that completed the coalesced round). The (fd, gen) pair keys the
  // connection so a verdict for a dead-and-recycled fd is a no-op.
  auto on_verdict = [this, &conns, request_close, delegate](
                        int fd, std::uint64_t gen,
                        const dnsbl::AsyncVerdict& verdict) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    MasterConn& conn = *it->second;
    if (conn.gen != gen) return;
    conn.dnsbl_pending = false;
    conn.dnsbl_have_verdict = true;
    conn.dnsbl_blacklisted = verdict.blacklisted;
    conn.dnsbl_degraded = verdict.degraded;
    const bool was_waiting = conn.session->rcpt_deferred();
    if (!verdict.cache_hit) {
      // Overlap accounting: the stall is what the client saw; the rest
      // of the DNS round ran behind the banner→HELO→MAIL dialog.
      const std::int64_t stall_ns =
          was_waiting ? util::MonotonicNanos() - conn.dnsbl_rcpt_ns : 0;
      if (dnsbl_hidden_ms_ != nullptr) {
        const std::int64_t hidden_ns =
            std::max<std::int64_t>(0, verdict.latency_ns - stall_ns);
        dnsbl_hidden_ms_->Observe(static_cast<double>(hidden_ns) / 1e6);
      }
      if (dnsbl_stall_ms_ != nullptr && was_waiting) {
        dnsbl_stall_ms_->Observe(static_cast<double>(stall_ns) / 1e6);
      }
    }
    if (!was_waiting) return;  // verdict beat the dialog: nothing parked
    // Re-run the gate now the verdict is in hand: binary 554/250 when
    // reputation is off, the full three-way score when it is on. The
    // parked recipient re-keys the greylist triple.
    conn.session->ResolveDeferredRcpt(
        GateVerdict(conn, conn.session->deferred_rcpt().ToString()));
    // Mirror the post-Feed dispatch of on_client_event: an accepted
    // verdict re-fires on_first_valid_rcpt, which pauses for handoff; a
    // rejected one closed the session (a greylisted one lives on in
    // MAIL_GIVEN and stays parked in this shard).
    if (conn.session->paused()) {
      delegate(fd);
      return;
    }
    if (conn.closed || conn.session->state() == smtp::SessionState::kClosed) {
      request_close(fd);
    }
  };

  // EPOLLOUT edge: the slow talker finally drained some of its receive
  // window. Flush, then fire whichever transition was parked behind the
  // backlog (delegation at trust, close after the final reply).
  auto on_writable = [this, &conns, loop, close_conn, delegate](int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    MasterConn& conn = *it->second;
    if (!FlushOutbuf(*loop, fd, conn)) {
      close_conn(fd);
      return;
    }
    if (!conn.outbuf.empty()) return;  // partial drain; wait for the next edge
    if (conn.delegate_when_flushed) {
      conn.delegate_when_flushed = false;
      delegate(fd);
      return;
    }
    if (conn.close_when_flushed) close_conn(fd);
  };

  // Feeds bytes into a session and applies the transitions that may
  // follow (delegation at trust, close on QUIT/554/error). Returns
  // false when the connection was handed off or torn down — the
  // MasterConn reference is dead in that case. (With replies still
  // queued the close is deferred, but input processing stops either
  // way: the session FSM is closed and Feed() ignores further bytes.)
  // `pin` (nullable) keeps the chunk backing `bytes` alive for any DATA
  // spans the session retains; without one the session copies.
  auto feed_session = [&conns, request_close, delegate](
                          int fd, MasterConn& conn, std::string_view bytes,
                          const std::shared_ptr<const void>* pin) {
    (void)conns;
    if (pin != nullptr) {
      conn.session->FeedPinned(bytes, *pin);
    } else {
      conn.session->Feed(bytes);
    }
    if (conn.session->paused()) {
      delegate(fd);
      return false;
    }
    if (conn.closed || conn.session->state() == smtp::SessionState::kClosed) {
      request_close(fd);
      return false;
    }
    return true;
  };

  auto on_client_event = [this, &shard, &conns, close_conn, feed_session,
                          on_writable](int fd, std::uint32_t events) {
    if ((events & EPOLLOUT) != 0) {
      on_writable(fd);
      if (conns.find(fd) == conns.end()) return;  // flushed-and-closed
    }
    if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) == 0) return;
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    MasterConn& conn = *it->second;
    // Reads until EAGAIN: client fds are registered edge-triggered, so
    // the socket must be drained before returning to the loop. Each
    // read gets a fresh pooled chunk so DATA spans a session keeps
    // never alias storage a later read reuses.
    for (;;) {
      net::BufferPool::Buffer buf = shard.pool.Acquire();
      const ssize_t n = ::read(fd, buf.data, buf.capacity);
      if (n > 0) {
        conn.last_activity_ns = util::MonotonicNanos();
        if (!conn.banner_sent) {
          // Early talker: the banner has not been sent yet, so these
          // bytes violate the SMTP handshake. The timer callback
          // rejects (legacy) or scores (reputation) the client; in
          // scored mode the session lives on, so keep the bytes — the
          // client is already waiting on replies to them.
          conn.pregreeted = true;
          if (rep_engine_ != nullptr) {
            constexpr std::size_t kPregreetBufCap = 8 * 1024;
            const std::size_t room =
                kPregreetBufCap - std::min(kPregreetBufCap,
                                           conn.pregreet_buf.size());
            conn.pregreet_buf.append(
                buf.data, std::min(static_cast<std::size_t>(n), room));
          }
          continue;
        }
        if (conn.first_cmd_ns < 0) {
          // First post-banner bytes: the banner→command gap is the
          // fast-talker feature (a human-configured MTA pauses; a
          // spam cannon fires the instant the 220 lands).
          conn.first_cmd_ns = conn.last_activity_ns;
        }
        if (!feed_session(
                fd, conn,
                std::string_view(buf.data, static_cast<std::size_t>(n)),
                &buf.pin)) {
          return;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      close_conn(fd);  // EOF or hard error
      return;
    }
  };

  // Adopts an accepted (already admitted, non-blocking) connection
  // into this shard: applies the per-shard gate, builds the session,
  // arms the pregreet timer, registers the fd edge-triggered.
  auto setup_conn = [this, &shard, &conns, loop, on_client_event, close_conn,
                     feed_session, on_verdict, pipeline_raw,
                     &next_gen](net::Accepted&& accepted) {
    const int fd = accepted.fd.get();
    if (cfg_.max_sessions_per_shard > 0 &&
        shard.sessions.load(std::memory_order_relaxed) >=
            cfg_.max_sessions_per_shard) {
      stats_.overload_sheds.fetch_add(1, std::memory_order_relaxed);
      shard.sheds.fetch_add(1, std::memory_order_relaxed);
      static constexpr char kShed[] =
          "421 4.3.2 Service overloaded, try again later\r\n";
      (void)util::SendAll(fd, kShed, sizeof(kShed) - 1);
      LogOperational("shard_shed", obs::EventSeverity::kWarn,
                     [this, &shard](obs::EventRecord& r) {
                       r.Int("shard", shard.index);
                       r.Int("limit", cfg_.max_sessions_per_shard);
                     });
      SessionDone();
      return;  // accepted.fd closes on return
    }
    shard.sessions.fetch_add(1, std::memory_order_relaxed);
    shard.accepted.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.client_sndbuf > 0) {
      const int sndbuf = cfg_.client_sndbuf;
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
    }

    auto conn = std::make_unique<MasterConn>();
    conn->fd = std::move(accepted.fd);
    conn->accepted_ns = util::MonotonicNanos();
    conn->last_activity_ns = conn->accepted_ns;
    conn->gen = next_gen++;
    if (pipeline_raw != nullptr || rep_engine_ != nullptr) {
      conn->dnsbl_ip =
          cfg_.dnsbl_ip_mapper
              ? cfg_.dnsbl_ip_mapper(accepted.peer_ip)
              : util::Ipv4::Parse(accepted.peer_ip).value_or(util::Ipv4());
    }
    MasterConn* raw_conn = conn.get();
    smtp::ServerSession::Hooks hooks;
    hooks.send = [this, loop, fd, raw_conn](std::string bytes) {
      // EAGAIN (slow talker, full receive window) parks the remainder
      // in the connection's bounded outbuf with EPOLLOUT armed instead
      // of aborting; a false return (dead peer, buffer cap) closes the
      // session via peer_dead.
      return SendOrBuffer(*loop, fd, *raw_conn, std::move(bytes));
    };
    hooks.validate_rcpt = [this](const smtp::Address& addr) {
      const bool ok = recipients_.IsValid(addr);
      if (!ok) {
        stats_.rejected_rcpts.fetch_add(1, std::memory_order_relaxed);
      }
      return ok;
    };
    // Freeze the session at the first valid RCPT: the remaining
    // bytes stay buffered and travel inside the handoff payload.
    hooks.on_first_valid_rcpt = [raw_conn] {
      raw_conn->session->RequestPause();
    };
    hooks.on_quit = [raw_conn] { raw_conn->closed = true; };
    if (pipeline_raw != nullptr || rep_engine_ != nullptr) {
      // Harvest point (§4.3): trust is granted at the first valid
      // RCPT, so that is where the DNSBL verdict must be in hand. A
      // verdict already harvested (or cached) answers inline; an
      // in-flight round parks the RCPT reply until on_verdict. With
      // the reputation engine on, the harvested verdict is one feature
      // of the weighted score instead of the whole answer.
      hooks.first_rcpt_gate =
          [this, raw_conn, fd, pipeline_raw, on_verdict](
              const std::string&,
              const smtp::Address& rcpt) -> smtp::RcptGateDecision {
        if (pipeline_raw != nullptr && !raw_conn->dnsbl_have_verdict &&
            !raw_conn->dnsbl_pending) {
          // Blocking baseline (dnsbl_overlap=false), or the overlapped
          // launch never happened: start the round now and wait.
          raw_conn->dnsbl_pending = true;
          raw_conn->dnsbl_begin_ns = util::MonotonicNanos();
          const std::uint64_t gen = raw_conn->gen;
          if (auto verdict = pipeline_raw->Begin(
                  raw_conn->dnsbl_ip,
                  [fd, gen, on_verdict](const dnsbl::AsyncVerdict& v) {
                    on_verdict(fd, gen, v);
                  })) {
            raw_conn->dnsbl_pending = false;
            raw_conn->dnsbl_have_verdict = true;
            raw_conn->dnsbl_blacklisted = verdict->blacklisted;
            raw_conn->dnsbl_degraded = verdict->degraded;
          }
        }
        if (pipeline_raw == nullptr || raw_conn->dnsbl_have_verdict) {
          return GateVerdict(*raw_conn, rcpt.ToString());
        }
        stats_.dnsbl_deferred.fetch_add(1, std::memory_order_relaxed);
        raw_conn->dnsbl_rcpt_ns = util::MonotonicNanos();
        return smtp::RcptGateDecision::kDefer;
      };
    }
    conn->session = std::make_unique<smtp::ServerSession>(
        cfg_.session, std::move(hooks), accepted.peer_ip);
    if (trace_ != nullptr) {
      conn->session->AttachTracer(
          trace_, &util::MonotonicNanos,
          trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
    }
    // Register before the banner goes out: the send hook's EPOLLOUT
    // arming is a Modify on this fd, so it must already be in the
    // epoll set (nothing dispatches until this adopt call returns to
    // Run(), so the early registration cannot race the setup below).
    conns.emplace(fd, std::move(conn));
    (void)loop->Add(fd, EPOLLIN | EPOLLET,
                    [fd, on_client_event](std::uint32_t e) {
                      on_client_event(fd, e);
                    });
    if (cfg_.pregreet_delay_ms > 0) {
      // Withhold the banner; arm a one-shot timer. Bytes arriving
      // before it fires brand the client an early talker.
      raw_conn->banner_sent = false;
      raw_conn->pregreet_timer.Reset(
          ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC));
      struct itimerspec when {};
      when.it_value.tv_sec = cfg_.pregreet_delay_ms / 1000;
      when.it_value.tv_nsec =
          static_cast<long>(cfg_.pregreet_delay_ms % 1000) * 1'000'000L;
      ::timerfd_settime(raw_conn->pregreet_timer.get(), 0, &when, nullptr);
      const int timer_fd = raw_conn->pregreet_timer.get();
      (void)loop->Add(
          timer_fd, EPOLLIN,
          [this, &shard, &conns, close_conn, feed_session, loop, fd,
           timer_fd](std::uint32_t) {
            (void)loop->Remove(timer_fd);
            auto conn_it = conns.find(fd);
            if (conn_it == conns.end()) return;
            MasterConn& parked = *conn_it->second;
            parked.pregreet_timer.Reset();
            parked.banner_sent = true;
            if (parked.pregreeted) {
              shard.pregreets.fetch_add(1, std::memory_order_relaxed);
              LogOperational(
                  "pregreet", obs::EventSeverity::kWarn,
                  [this, &shard, &parked](obs::EventRecord& r) {
                    r.Str("peer24", Peer24(parked.session->client_ip()));
                    r.Int("shard", shard.index);
                    r.Str("action", rep_engine_ ? "scored" : "rejected");
                  });
              if (rep_engine_ == nullptr) {
                // postscreen behaviour: instant 554, never a worker.
                stats_.pregreet_rejects.fetch_add(1,
                                                  std::memory_order_relaxed);
                const std::string reject =
                    "554 5.5.1 Protocol error: talked "
                    "before my banner\r\n";
                (void)util::SendAll(fd, reject.data(), reject.size());
                close_conn(fd);
                return;
              }
              // Scored mode: the violation is kept as evidence for the
              // RCPT gate instead of a hair-trigger reap — the session
              // gets its banner and must now earn its fork.
              stats_.pregreet_scored.fetch_add(1, std::memory_order_relaxed);
            }
            parked.session->Start();  // 220 banner
            parked.banner_ns = util::MonotonicNanos();
            if (!parked.pregreet_buf.empty()) {
              // Replay what the early talker blasted: it is waiting on
              // replies to these commands. A pregreeter by definition
              // answered before the banner — a zero banner→command gap.
              parked.first_cmd_ns = parked.banner_ns;
              const std::string pending = std::move(parked.pregreet_buf);
              (void)feed_session(fd, parked, pending, nullptr);
            }
          });
    } else {
      raw_conn->session->Start();
      raw_conn->banner_ns = util::MonotonicNanos();
    }
    if (pipeline_raw != nullptr && cfg_.dnsbl_overlap) {
      // Launch the DNSBL round NOW, at accept: its RTT runs under the
      // banner→HELO→MAIL dialog instead of stalling the first RCPT.
      raw_conn->dnsbl_pending = true;
      raw_conn->dnsbl_begin_ns = util::MonotonicNanos();
      const std::uint64_t gen = raw_conn->gen;
      if (auto verdict = pipeline_raw->Begin(
              raw_conn->dnsbl_ip,
              [fd, gen, on_verdict](const dnsbl::AsyncVerdict& v) {
                on_verdict(fd, gen, v);
              })) {
        on_verdict(fd, gen, *verdict);
      }
    }
  };
  // Published for the fallback accept thread; tasks it posts run on
  // this thread inside Run(), so the reference captures stay valid.
  shard.adopt = setup_conn;

  if (shard.listener.valid()) {
    // SO_REUSEPORT mode: this shard drains its own accept queue.
    // Edge-triggered: each new completed connection re-arms the event,
    // and failing with EMFILE simply waits for the next edge instead
    // of spinning on a level-triggered ready listener.
    (void)util::SetNonBlocking(shard.listener.get());
    const int listen_fd = shard.listener.get();
    auto drain_accept = [this, &shard, setup_conn, loop, listen_fd]() {
      for (;;) {
        int err = 0;
        auto accepted = net::TcpAcceptNonBlocking(listen_fd, &err);
        if (!accepted.ok()) {
          if (err == EAGAIN || err == EWOULDBLOCK) return;
          if (!accepting_.load(std::memory_order_acquire)) {
            // Drain() shut the listener down; stop polling it.
            (void)loop->Remove(listen_fd);
            return;
          }
          if (OnAcceptError(err, 0) == 0) continue;  // transient
          // Persistent (EMFILE/ENFILE): connections already completed
          // in the queue will never raise another edge on their own.
          // Mark the shard stalled so close_conn re-drains the moment
          // a session frees a descriptor — already-accepted sessions
          // keep running; only new admissions wait for capacity.
          shard.accept_stalled = true;
          return;
        }
        stats_.connections.fetch_add(1, std::memory_order_relaxed);
        if (!AdmitSession(accepted->fd.get())) continue;  // shed
        setup_conn(std::move(*accepted));
      }
    };
    shard.drain_accept = drain_accept;
    const util::Error add_err =
        loop->Add(listen_fd, EPOLLIN | EPOLLET,
                  [drain_accept](std::uint32_t) { drain_accept(); });
    if (!add_err.ok()) {
      SAMS_LOG(kError) << "shard " << shard.index
                       << " loop setup failed: " << add_err.ToString();
      shard.adopt = nullptr;
      shard.drain_accept = nullptr;
      return;
    }
  }

  // Periodic reaper: evict parked sessions that have gone idle (slow
  // loris) or outlived the pre-trust deadline. Spammers must not be
  // able to fill the shard's epoll set with half-open dialogs.
  util::UniqueFd reap_timer;
  if (cfg_.master_idle_timeout_ms > 0 || cfg_.master_session_deadline_ms > 0) {
    int tick_ms = 1'000;
    if (cfg_.master_idle_timeout_ms > 0) {
      tick_ms = std::min(tick_ms, std::max(10, cfg_.master_idle_timeout_ms / 4));
    }
    if (cfg_.master_session_deadline_ms > 0) {
      tick_ms =
          std::min(tick_ms, std::max(10, cfg_.master_session_deadline_ms / 4));
    }
    reap_timer.Reset(::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC));
    struct itimerspec when {};
    when.it_value.tv_sec = tick_ms / 1000;
    when.it_value.tv_nsec = static_cast<long>(tick_ms % 1000) * 1'000'000L;
    when.it_interval = when.it_value;
    ::timerfd_settime(reap_timer.get(), 0, &when, nullptr);
    const int timer_fd = reap_timer.get();
    (void)loop->Add(
        timer_fd, EPOLLIN,
        [this, &conns, close_conn, timer_fd](std::uint32_t) {
          std::uint64_t expirations = 0;
          (void)::read(timer_fd, &expirations, sizeof(expirations));
          const std::int64_t now = util::MonotonicNanos();
          const std::int64_t idle_ns =
              static_cast<std::int64_t>(cfg_.master_idle_timeout_ms) *
              1'000'000;
          const std::int64_t deadline_ns =
              static_cast<std::int64_t>(cfg_.master_session_deadline_ms) *
              1'000'000;
          std::vector<int> expired;
          for (const auto& [fd, conn] : conns) {
            const bool idle =
                idle_ns > 0 && now - conn->last_activity_ns >= idle_ns;
            const bool over =
                deadline_ns > 0 && now - conn->accepted_ns >= deadline_ns;
            if (idle || over) expired.push_back(fd);
          }
          for (int fd : expired) {
            stats_.idle_reaped.fetch_add(1, std::memory_order_relaxed);
            static constexpr char kReap[] =
                "421 4.4.2 Idle timeout, closing transmission channel\r\n";
            (void)util::SendAll(fd, kReap, sizeof(kReap) - 1);
            auto reap_it = conns.find(fd);
            if (reap_it != conns.end() && reap_it->second->session) {
              LogOperational(
                  "idle_reap", obs::EventSeverity::kInfo,
                  [&reap_it](obs::EventRecord& r) {
                    r.Str("peer24",
                          Peer24(reap_it->second->session->client_ip()));
                    r.Str("state", smtp::SessionStateName(
                                       reap_it->second->session->state()));
                  });
            }
            close_conn(fd);
          }
        });
  }

  // Stall watchdog (DESIGN.md §11): observe-only companion to the
  // reaper above. Any session stuck in ONE pipeline stage longer than
  // the threshold is snapshotted into the event log — once — with its
  // span history, so a wedged DNSBL round or a worker pool outage shows
  // up as a diagnosable record instead of a silent latency cliff.
  util::UniqueFd stall_timer;
  if (cfg_.stall_watchdog_ms > 0 && event_log_ != nullptr) {
    const int tick_ms = std::max(10, cfg_.stall_watchdog_ms / 4);
    stall_timer.Reset(::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC));
    struct itimerspec when {};
    when.it_value.tv_sec = tick_ms / 1000;
    when.it_value.tv_nsec = static_cast<long>(tick_ms % 1000) * 1'000'000L;
    when.it_interval = when.it_value;
    ::timerfd_settime(stall_timer.get(), 0, &when, nullptr);
    const int timer_fd = stall_timer.get();
    (void)loop->Add(
        timer_fd, EPOLLIN, [this, &shard, &conns, timer_fd](std::uint32_t) {
          std::uint64_t expirations = 0;
          (void)::read(timer_fd, &expirations, sizeof(expirations));
          const std::int64_t now = util::MonotonicNanos();
          const std::int64_t stall_ns =
              static_cast<std::int64_t>(cfg_.stall_watchdog_ms) * 1'000'000;
          for (auto& [fd, conn] : conns) {
            if (conn->stall_logged || !conn->session) continue;
            // Tracing gives the exact stage-entry time; otherwise fall
            // back to last socket activity.
            const bool traced = conn->session->tracing();
            const std::int64_t since = traced
                                           ? conn->session->trace_stage_start_ns()
                                           : conn->last_activity_ns;
            if (now - since < stall_ns) continue;
            conn->stall_logged = true;
            stats_.stalled_sessions.fetch_add(1, std::memory_order_relaxed);
            obs::EventRecord record("smtp", "stall",
                                    obs::EventSeverity::kWarn);
            record.Int("id", static_cast<std::int64_t>(conn->session->trace_id()))
                .Int("shard", shard.index)
                .Str("stage",
                     traced ? obs::StageName(conn->session->trace_stage())
                            : smtp::SessionStateName(conn->session->state()))
                .Num("stalled_ms", static_cast<double>(now - since) / 1e6)
                .Str("state",
                     smtp::SessionStateName(conn->session->state()))
                .Str("peer24", Peer24(conn->session->client_ip()))
                .Bool("dnsbl_pending", conn->dnsbl_pending);
            if (traced && trace_ != nullptr) {
              // Completed spans so far: "stage:ms stage:ms ...".
              std::string spans;
              for (const obs::SpanRecord& rec :
                   trace_->SessionRecords(conn->session->trace_id())) {
                if (!spans.empty()) spans += ' ';
                spans += obs::StageName(rec.stage);
                spans += ':';
                spans += std::to_string(rec.duration_ns() / 1'000'000);
                spans += "ms";
              }
              record.Str("spans", spans);
            }
            event_log_->Emit(record);
          }
        });
  }

  (void)loop->Run();
  shard.adopt = nullptr;
  shard.drain_accept = nullptr;
  if (pipeline) dnsbl_shards_bound_.fetch_sub(1, std::memory_order_relaxed);
  // Drain: close any connections still parked in this shard.
  shard.sessions.fetch_sub(static_cast<int>(conns.size()),
                           std::memory_order_relaxed);
  conns.clear();
}

void SmtpServer::HandoffAcceptLoop() {
  // SO_REUSEPORT was unavailable: one blocking accept loop feeds the
  // shard reactors round-robin by posting the descriptor onto the
  // target shard's event loop.
  std::size_t next_shard = 0;
  int backoff_ms = 0;
  while (running_.load(std::memory_order_acquire) &&
         accepting_.load(std::memory_order_acquire)) {
    if (backoff_ms > 0) {
      SleepMs(backoff_ms);
      if (!running_.load(std::memory_order_acquire) ||
          !accepting_.load(std::memory_order_acquire)) {
        break;
      }
    }
    int err = 0;
    auto accepted = net::TcpAccept(listener_.get(), &err);
    if (!accepted.ok()) {
      if (!running_.load() || !accepting_.load()) break;
      backoff_ms = OnAcceptError(err, backoff_ms);
      continue;
    }
    backoff_ms = 0;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    if (!AdmitSession(accepted->fd.get())) continue;  // shed; fd closes
    (void)util::SetNonBlocking(accepted->fd.get());
    Shard* shard = shards_[next_shard++ % shards_.size()].get();
    // shared_ptr because std::function requires copyable captures.
    auto conn = std::make_shared<net::Accepted>(std::move(*accepted));
    shard->loop->Post([shard, conn]() mutable {
      if (shard->adopt) shard->adopt(std::move(*conn));
    });
  }
}

void SmtpServer::WorkerLoop(int channel_fd) {
  util::UniqueFd channel(channel_fd);
  for (;;) {
    // Blocks until a shard delegates a connection (one recvmsg pops
    // exactly one task even when several are queued in the socket
    // buffer — the vector-send batching of §5.3) or closes the channel.
    auto task = util::RecvFdWithPayload(channel.get());
    if (!task.ok()) return;  // EOF: server stopping

    if (!SAMS_FAULT_ERROR("mta.worker.after_recv").ok()) {
      // Simulated smtpd death mid-delegation: abandon the channel the
      // way a crashed worker process would. The client socket closes
      // (its unacked session is lost, never acked mail) and the
      // master's next send on this channel gets EPIPE and requeues.
      SessionDone();
      return;
    }

    const int fd = task->fd.get();
    SetBlocking(fd);
    (void)net::SetRecvTimeout(fd, cfg_.recv_timeout_ms);
    if (cfg_.send_timeout_ms > 0) {
      (void)net::SetSendTimeout(fd, cfg_.send_timeout_ms);
    }

    smtp::ServerSession::Hooks hooks;
    hooks.send = [fd](std::string bytes) {
      return util::SendAll(fd, bytes.data(), bytes.size()).ok();
    };
    hooks.validate_rcpt = [this](const smtp::Address& addr) {
      const bool ok = recipients_.IsValid(addr);
      if (!ok) stats_.rejected_rcpts.fetch_add(1, std::memory_order_relaxed);
      return ok;
    };
    if (cfg_.content_check) {
      hooks.content_check = [this](const smtp::Envelope& envelope) {
        const bool accepted = cfg_.content_check(envelope);
        if (!accepted) {
          stats_.content_rejects.fetch_add(1, std::memory_order_relaxed);
        }
        return accepted;
      };
    }
    hooks.on_mail = [this](smtp::Envelope&& envelope) {
      DeliverEnvelope(std::move(envelope));
    };
    auto session = smtp::ServerSession::ResumeFromHandoff(
        cfg_.session, std::move(hooks), task->payload);
    if (!session.ok()) {
      SAMS_LOG(kError) << "resume failed: " << session.error().ToString();
      SessionDone();
      continue;  // drop the connection (task->fd closes)
    }
    if (trace_ != nullptr && session->handoff_trace_id() != 0) {
      // Continue the master-side trace: same session id, kHandoff
      // stage opened at the master's handoff timestamp so the span
      // covers the actual descriptor transfer.
      session->AttachTracer(trace_, &util::MonotonicNanos,
                            session->handoff_trace_id(), obs::Stage::kHandoff,
                            session->handoff_trace_start_ns());
    }
    // Process any bytes the client pipelined past the handoff point,
    // then continue with blocking reads until QUIT/EOF.
    session->Feed("");
    FinishSession(*session, fd);
    LogSessionOutcome(*session, /*shard=*/-1, "worker");
    SessionDone();
  }
}

}  // namespace sams::mta
