// Load drivers for the simulated server — the paper's two client
// programs (Table 1):
//
//   Client Program 1 — closed system [24]: maintains a configurable
//   number of concurrent connections; each completed session
//   immediately starts the next one from the trace.
//
//   Client Program 2 — open system [24]: initiates new connections as
//   a Poisson process at a configurable rate, regardless of how many
//   are outstanding.
//
// Both run a warm-up phase, then measure goodput and resource metrics
// over a window (deltas of the machine's and server's counters).
#pragma once

#include <cstdint>
#include <span>

#include "mta/sim_server.h"
#include "util/rng.h"

namespace sams::mta {

struct LoadResult {
  double goodput_mails_per_sec = 0.0;    // delivered mails / window
  double sessions_per_sec = 0.0;         // closed sessions / window
  double cpu_utilization = 0.0;          // busy / window
  double cpu_switch_overhead = 0.0;      // switch overhead / window
  std::uint64_t context_switches = 0;    // during the window
  std::uint64_t forks = 0;
  std::uint64_t mails_delivered = 0;
  std::uint64_t mailbox_deliveries = 0;   // mails x recipients
  double mailbox_writes_per_sec = 0.0;
  std::uint64_t bounce_sessions = 0;
  std::uint64_t unfinished_sessions = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t dns_queries = 0;          // resolver messages sent
  double dnsbl_hit_ratio = 0.0;           // cumulative, if resolver present
};

// Closed-system run: `concurrency` client connections cycle through
// `trace` (wrapping around) until warmup+window of simulated time.
LoadResult RunClosedLoop(sim::Machine& machine, SimMailServer& server,
                         std::span<const trace::SessionSpec> trace,
                         int concurrency, SimTime warmup, SimTime window,
                         const dnsbl::Resolver* resolver = nullptr);

// Open-system run: Poisson arrivals at `rate_per_sec`, sessions taken
// from `trace` in order (wrapping).
LoadResult RunOpenLoop(sim::Machine& machine, SimMailServer& server,
                       std::span<const trace::SessionSpec> trace,
                       double rate_per_sec, SimTime warmup, SimTime window,
                       util::Rng& rng,
                       const dnsbl::Resolver* resolver = nullptr);

}  // namespace sams::mta
