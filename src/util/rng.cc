#include "util/rng.h"

#include <algorithm>
#include <cassert>

namespace sams::util {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(NextU64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mu, double sigma) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * r * std::cos(6.283185307179586 * u2);
}

double Rng::Pareto(double x_m, double alpha) {
  assert(x_m > 0 && alpha > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  double x = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;
}

ZipfDistribution::ZipfDistribution(double s, std::size_t n) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

}  // namespace sams::util
