#include "util/ipv4.h"

#include <cstdio>

namespace sams::util {
namespace {

// Parses up to 3 digits as one octet; advances *pos past them.
std::optional<std::uint8_t> ParseOctet(const std::string& s, std::size_t* pos) {
  if (*pos >= s.size() || s[*pos] < '0' || s[*pos] > '9') return std::nullopt;
  int v = 0;
  std::size_t digits = 0;
  while (*pos < s.size() && s[*pos] >= '0' && s[*pos] <= '9' && digits < 4) {
    v = v * 10 + (s[*pos] - '0');
    ++*pos;
    ++digits;
  }
  if (digits == 0 || digits > 3 || v > 255) return std::nullopt;
  return static_cast<std::uint8_t>(v);
}

}  // namespace

std::optional<Ipv4> Ipv4::Parse(const std::string& dotted) {
  std::size_t pos = 0;
  std::uint8_t o[4];
  for (int i = 0; i < 4; ++i) {
    auto v = ParseOctet(dotted, &pos);
    if (!v) return std::nullopt;
    o[i] = *v;
    if (i < 3) {
      if (pos >= dotted.size() || dotted[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != dotted.size()) return std::nullopt;
  return Ipv4(o[0], o[1], o[2], o[3]);
}

std::string Ipv4::ToString() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

std::string Prefix24::ToString() const {
  return First().ToString() + "/24";
}

std::string Prefix25::ToString() const {
  return First().ToString() + "/25";
}

std::string DnsblQueryName(Ipv4 ip, const std::string& zone) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u.", ip.octet(3), ip.octet(2),
                ip.octet(1), ip.octet(0));
  return buf + zone;
}

std::string Dnsblv6QueryName(Ipv4 ip, const std::string& zone) {
  const int half = ip.octet(3) < 128 ? 0 : 1;
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%d.%u.%u.%u.", half, ip.octet(2), ip.octet(1),
                ip.octet(0));
  return buf + zone;
}

namespace {

// Splits "<labels>.<zone>" and parses the leading labels as reversed
// octets; reassembles the address (or /25 representative for the v6
// half form, where the first label must be 0 or 1).
std::optional<Ipv4> ParseReversedLabels(const std::string& name,
                                        const std::string& zone,
                                        bool v6_half_form) {
  if (name.size() <= zone.size() + 1) return std::nullopt;
  const std::size_t zone_at = name.size() - zone.size();
  if (name.compare(zone_at, std::string::npos, zone) != 0) return std::nullopt;
  if (name[zone_at - 1] != '.') return std::nullopt;
  const std::string labels = name.substr(0, zone_at - 1) + ".";
  std::size_t pos = 0;
  std::uint8_t o[4];
  for (int i = 0; i < 4; ++i) {
    auto v = ParseOctet(labels, &pos);
    if (!v) return std::nullopt;
    if (pos >= labels.size() || labels[pos] != '.') return std::nullopt;
    ++pos;
    o[i] = *v;
  }
  if (pos != labels.size()) return std::nullopt;
  if (v6_half_form && o[0] > 1) return std::nullopt;
  // Labels are w.z.y.x → address is x.y.z.w (or half.z.y.x).
  return Ipv4(o[3], o[2], o[1], v6_half_form ? static_cast<std::uint8_t>(o[0] * 128)
                                             : o[0]);
}

}  // namespace

std::optional<Ipv4> ParseDnsblQueryName(const std::string& name,
                                        const std::string& zone) {
  return ParseReversedLabels(name, zone, /*v6_half_form=*/false);
}

std::optional<Prefix25> ParseDnsblv6QueryName(const std::string& name,
                                              const std::string& zone) {
  auto ip = ParseReversedLabels(name, zone, /*v6_half_form=*/true);
  if (!ip) return std::nullopt;
  return Prefix25(*ip);
}

}  // namespace sams::util
