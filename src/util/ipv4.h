// IPv4 addresses, /24 and /25 prefix arithmetic, and the DNSBL query
// name encodings the paper uses:
//   classic:  w.z.y.x.<zone>          (per-IP lookup, §4.3)
//   DNSBLv6:  {0|1}.z.y.x.<zone>      (/25 bitmap lookup, §7.1)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sams::util {

class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t be_value) : v_(be_value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : v_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
           (std::uint32_t{c} << 8) | d) {}

  static std::optional<Ipv4> Parse(const std::string& dotted);

  constexpr std::uint32_t value() const { return v_; }
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(v_ >> (8 * (3 - i)));
  }

  std::string ToString() const;

  constexpr auto operator<=>(const Ipv4&) const = default;

 private:
  std::uint32_t v_ = 0;
};

// A /24 prefix: the top 24 bits of an address.
class Prefix24 {
 public:
  constexpr Prefix24() = default;
  constexpr explicit Prefix24(Ipv4 ip) : v_(ip.value() >> 8) {}

  constexpr std::uint32_t value() const { return v_; }
  constexpr Ipv4 First() const { return Ipv4(v_ << 8); }
  constexpr Ipv4 Nth(std::uint8_t host) const { return Ipv4((v_ << 8) | host); }
  std::string ToString() const;  // "a.b.c.0/24"

  constexpr auto operator<=>(const Prefix24&) const = default;

 private:
  std::uint32_t v_ = 0;
};

// A /25 prefix: the granularity of the DNSBLv6 bitmap (128 addresses,
// matching the 128 bits of an IPv6 record).
class Prefix25 {
 public:
  constexpr Prefix25() = default;
  constexpr explicit Prefix25(Ipv4 ip) : v_(ip.value() >> 7) {}

  constexpr std::uint32_t value() const { return v_; }
  constexpr Ipv4 First() const { return Ipv4(v_ << 7); }
  // Offset of `ip` within this /25, in [0, 128).
  static constexpr int BitIndex(Ipv4 ip) { return ip.value() & 0x7f; }
  // Which half of the /24: 0 if host byte < 128, 1 otherwise (§7.1).
  constexpr int HalfOfSlash24() const { return static_cast<int>(v_ & 1); }
  std::string ToString() const;  // "a.b.c.{0|128}/25"

  constexpr auto operator<=>(const Prefix25&) const = default;

 private:
  std::uint32_t v_ = 0;
};

// "w.z.y.x.<zone>" — the classic reversed-octet DNSBL query name.
std::string DnsblQueryName(Ipv4 ip, const std::string& zone);

// "{0|1}.z.y.x.<zone>" — the DNSBLv6 /25-bitmap query name (§7.1).
std::string Dnsblv6QueryName(Ipv4 ip, const std::string& zone);

// Inverse of DnsblQueryName: recovers the IP from a query name under
// the given zone; nullopt if the name is not of that form.
std::optional<Ipv4> ParseDnsblQueryName(const std::string& name,
                                        const std::string& zone);

// Inverse of Dnsblv6QueryName: recovers the /25 prefix.
std::optional<Prefix25> ParseDnsblv6QueryName(const std::string& name,
                                              const std::string& zone);

}  // namespace sams::util

// Hash support so addresses/prefixes can key unordered containers.
template <>
struct std::hash<sams::util::Ipv4> {
  std::size_t operator()(const sams::util::Ipv4& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};
template <>
struct std::hash<sams::util::Prefix24> {
  std::size_t operator()(const sams::util::Prefix24& p) const noexcept {
    return std::hash<std::uint32_t>{}(p.value() * 0x9e3779b9u);
  }
};
template <>
struct std::hash<sams::util::Prefix25> {
  std::size_t operator()(const sams::util::Prefix25& p) const noexcept {
    return std::hash<std::uint32_t>{}(p.value() * 0x85ebca6bu);
  }
};
