#include "util/strings.h"

namespace sams::util {

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToUpper(c);
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToLower(c);
  return out;
}

bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (AsciiToUpper(a[i]) != AsciiToUpper(b[i])) return false;
  }
  return true;
}

bool IStartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && IEquals(s.substr(0, prefix.size()), prefix);
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool IsPrintableAscii(std::string_view s) {
  for (char c : s) {
    if (c < 0x20 || c > 0x7e) return false;
  }
  return true;
}

}  // namespace sams::util
