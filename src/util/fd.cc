#include "util/fd.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>

#include <cerrno>
#include <cstring>

namespace sams::util {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<std::pair<UniqueFd, UniqueFd>> MakeSocketPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return IoError(Errno("socketpair"));
  }
  return std::make_pair(UniqueFd(fds[0]), UniqueFd(fds[1]));
}

Error SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return IoError(Errno("fcntl(F_GETFL)"));
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return IoError(Errno("fcntl(F_SETFL)"));
  }
  return OkError();
}

namespace {

// Blocks until `fd` is ready for the given poll events; tolerates
// EINTR. Used to wait out EAGAIN on non-blocking channels.
Error WaitReady(int fd, short events) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  int rc;
  do {
    rc = ::poll(&pfd, 1, -1);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return IoError(Errno("poll"));
  return OkError();
}

bool PeerGone(int err) {
  return err == EPIPE || err == ECONNRESET || err == ENOTCONN;
}

// send() the full buffer; retries EINTR, waits out EAGAIN, maps a dead
// peer to kUnavailable. MSG_NOSIGNAL keeps SIGPIPE away.
Error SendExactly(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        SAMS_RETURN_IF_ERROR(WaitReady(fd, POLLOUT));
        continue;
      }
      if (PeerGone(errno)) return Unavailable(Errno("send"));
      return IoError(Errno("send"));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return OkError();
}

// recv() exactly n bytes; EOF mid-frame is a protocol error.
Error RecvExactly(int fd, char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        SAMS_RETURN_IF_ERROR(WaitReady(fd, POLLIN));
        continue;
      }
      if (PeerGone(errno)) return Unavailable(Errno("recv"));
      return IoError(Errno("recv"));
    }
    if (r == 0) return ProtocolError("peer closed mid-frame");
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return OkError();
}

}  // namespace

Error SendFdWithPayload(int channel, int fd_to_send, const std::string& payload) {
  if (payload.empty()) return InvalidArgument("payload must be non-empty");
  if (payload.size() > kMaxFdPayload) {
    return InvalidArgument("task payload exceeds kMaxFdPayload");
  }
  // Frame: 4-byte payload length, then the bytes. The length prefix —
  // not kernel message boundaries — delimits the task, so a partial
  // first write cannot merge adjacent tasks on the receiver.
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char header[4];
  std::memcpy(header, &len, sizeof(header));

  struct iovec iov[2];
  iov[0].iov_base = header;
  iov[0].iov_len = sizeof(header);
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();

  alignas(struct cmsghdr) char control[CMSG_SPACE(sizeof(int))];
  std::memset(control, 0, sizeof(control));

  struct msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = iov;
  msg.msg_iovlen = 2;
  msg.msg_control = control;
  msg.msg_controllen = sizeof(control);

  struct cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
  cmsg->cmsg_level = SOL_SOCKET;
  cmsg->cmsg_type = SCM_RIGHTS;
  cmsg->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cmsg), &fd_to_send, sizeof(int));

  // The descriptor must ride a successful sendmsg; retry EINTR/EAGAIN
  // until at least the frame head is accepted.
  ssize_t sent;
  for (;;) {
    sent = ::sendmsg(channel, &msg, MSG_NOSIGNAL);
    if (sent >= 0) break;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SAMS_RETURN_IF_ERROR(WaitReady(channel, POLLOUT));
      continue;
    }
    if (PeerGone(errno)) return Unavailable(Errno("sendmsg"));
    return IoError(Errno("sendmsg"));
  }
  const std::size_t frame = sizeof(header) + payload.size();
  if (static_cast<std::size_t>(sent) >= frame) return OkError();
  // Partial acceptance (tiny socket buffer / non-blocking channel):
  // the descriptor is already across; stream the rest of the frame.
  std::size_t done = static_cast<std::size_t>(sent);
  if (done < sizeof(header)) {
    SAMS_RETURN_IF_ERROR(
        SendExactly(channel, header + done, sizeof(header) - done));
    done = sizeof(header);
  }
  return SendExactly(channel, payload.data() + (done - sizeof(header)),
                     payload.size() - (done - sizeof(header)));
}

Result<ReceivedFd> RecvFdWithPayload(int channel, std::size_t max_payload) {
  // First recvmsg: the descriptor plus the head of the frame. The
  // kernel never merges bytes across an SCM_RIGHTS boundary, so this
  // read cannot slurp a neighbouring task's descriptor; the length
  // prefix bounds how much of the stream belongs to this task.
  char head[16 * 1024];
  struct iovec iov;
  iov.iov_base = head;
  iov.iov_len = sizeof(head);

  alignas(struct cmsghdr) char control[CMSG_SPACE(sizeof(int))];
  std::memset(control, 0, sizeof(control));

  struct msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = sizeof(control);

  ssize_t n;
  for (;;) {
    n = ::recvmsg(channel, &msg, MSG_CMSG_CLOEXEC);
    if (n >= 0) break;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SAMS_RETURN_IF_ERROR(WaitReady(channel, POLLIN));
      continue;
    }
    if (PeerGone(errno)) return Unavailable(Errno("recvmsg"));
    return IoError(Errno("recvmsg"));
  }
  if (n == 0) return Unavailable("peer closed delegation channel");

  ReceivedFd out;
  for (struct cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
       cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS &&
        cmsg->cmsg_len >= CMSG_LEN(sizeof(int))) {
      int fd;
      std::memcpy(&fd, CMSG_DATA(cmsg), sizeof(int));
      out.fd.Reset(fd);
      break;
    }
  }
  if (!out.fd.valid()) {
    return ProtocolError("recvmsg: task message carried no descriptor");
  }

  std::size_t got = static_cast<std::size_t>(n);
  char length_buf[4];
  std::size_t header_have = std::min(got, sizeof(length_buf));
  std::memcpy(length_buf, head, header_have);
  if (header_have < sizeof(length_buf)) {
    SAMS_RETURN_IF_ERROR(RecvExactly(channel, length_buf + header_have,
                                     sizeof(length_buf) - header_have));
    got = sizeof(length_buf);
  }
  std::uint32_t len;
  std::memcpy(&len, length_buf, sizeof(len));
  if (len == 0 || len > max_payload) {
    return ProtocolError("task frame length " + std::to_string(len) +
                         " out of bounds");
  }
  out.payload.resize(len);
  const std::size_t body_have =
      got > sizeof(length_buf) ? got - sizeof(length_buf) : 0;
  if (body_have > len) {
    return ProtocolError("task frame overran its declared length");
  }
  std::memcpy(out.payload.data(), head + sizeof(length_buf), body_have);
  SAMS_RETURN_IF_ERROR(
      RecvExactly(channel, out.payload.data() + body_have, len - body_have));
  return out;
}

Error WriteAll(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return IoError(Errno("write"));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return OkError();
}

Error ReadAll(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError(Errno("read"));
    }
    if (r == 0) return Unavailable("unexpected EOF");
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return OkError();
}

Error SendAll(int fd, const void* data, std::size_t n) {
  // Unlike the delegation-channel path (SendExactly), a client reply
  // must NOT wait indefinitely for writability: EAGAIN here means
  // either SO_SNDTIMEO expired on a blocking socket (slow-loris peer
  // not draining its window) or a non-blocking socket's buffer is
  // full — both are "give up on this client", never "park the thread".
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Unavailable("send: peer not draining (timeout/full buffer)");
      }
      if (PeerGone(errno)) return Unavailable(Errno("send"));
      return IoError(Errno("send"));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return OkError();
}

}  // namespace sams::util
