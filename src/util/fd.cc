#include "util/fd.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sams::util {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<std::pair<UniqueFd, UniqueFd>> MakeSocketPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return IoError(Errno("socketpair"));
  }
  return std::make_pair(UniqueFd(fds[0]), UniqueFd(fds[1]));
}

Error SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return IoError(Errno("fcntl(F_GETFL)"));
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return IoError(Errno("fcntl(F_SETFL)"));
  }
  return OkError();
}

Error SendFdWithPayload(int channel, int fd_to_send, const std::string& payload) {
  if (payload.empty()) return InvalidArgument("payload must be non-empty");
  struct iovec iov;
  iov.iov_base = const_cast<char*>(payload.data());
  iov.iov_len = payload.size();

  alignas(struct cmsghdr) char control[CMSG_SPACE(sizeof(int))];
  std::memset(control, 0, sizeof(control));

  struct msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = sizeof(control);

  struct cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
  cmsg->cmsg_level = SOL_SOCKET;
  cmsg->cmsg_type = SCM_RIGHTS;
  cmsg->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cmsg), &fd_to_send, sizeof(int));

  ssize_t sent;
  do {
    sent = ::sendmsg(channel, &msg, 0);
  } while (sent < 0 && errno == EINTR);
  if (sent < 0) return IoError(Errno("sendmsg"));
  if (static_cast<std::size_t>(sent) != payload.size()) {
    return IoError("sendmsg: short write of task payload");
  }
  return OkError();
}

Result<ReceivedFd> RecvFdWithPayload(int channel, std::size_t max_payload) {
  std::string buf(max_payload, '\0');
  struct iovec iov;
  iov.iov_base = buf.data();
  iov.iov_len = buf.size();

  alignas(struct cmsghdr) char control[CMSG_SPACE(sizeof(int))];
  std::memset(control, 0, sizeof(control));

  struct msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = sizeof(control);

  ssize_t n;
  do {
    n = ::recvmsg(channel, &msg, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return IoError(Errno("recvmsg"));
  if (n == 0) return Unavailable("peer closed delegation channel");

  ReceivedFd out;
  buf.resize(static_cast<std::size_t>(n));
  out.payload = std::move(buf);

  for (struct cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
       cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS &&
        cmsg->cmsg_len >= CMSG_LEN(sizeof(int))) {
      int fd;
      std::memcpy(&fd, CMSG_DATA(cmsg), sizeof(int));
      out.fd.Reset(fd);
      break;
    }
  }
  if (!out.fd.valid()) {
    return ProtocolError("recvmsg: task message carried no descriptor");
  }
  return out;
}

Error WriteAll(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return IoError(Errno("write"));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return OkError();
}

Error ReadAll(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError(Errno("read"));
    }
    if (r == 0) return Unavailable("unexpected EOF");
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return OkError();
}

}  // namespace sams::util
