// Lightweight error propagation for fallible library operations.
//
// MFS and the networking layer report expected failures (missing file,
// bad record, peer reset) through Result<T> rather than exceptions so
// hot paths stay allocation- and unwind-free; programming errors still
// assert. Modeled on the usual Status/StatusOr shape.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sams::util {

enum class ErrorCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kPermissionDenied,
  kCorruption,
  kIoError,
  kOutOfRange,
  kUnavailable,
  kProtocolError,
  kResourceExhausted,
  kFailedPrecondition,
};

const char* ErrorCodeName(ErrorCode code);

class Error {
 public:
  Error() = default;
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }
  bool ok() const { return code_ == ErrorCode::kOk; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(ErrorCodeName(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Error OkError() { return Error(); }
inline Error NotFound(std::string m) { return {ErrorCode::kNotFound, std::move(m)}; }
inline Error AlreadyExists(std::string m) {
  return {ErrorCode::kAlreadyExists, std::move(m)};
}
inline Error InvalidArgument(std::string m) {
  return {ErrorCode::kInvalidArgument, std::move(m)};
}
inline Error PermissionDenied(std::string m) {
  return {ErrorCode::kPermissionDenied, std::move(m)};
}
inline Error Corruption(std::string m) { return {ErrorCode::kCorruption, std::move(m)}; }
inline Error IoError(std::string m) { return {ErrorCode::kIoError, std::move(m)}; }
inline Error OutOfRange(std::string m) { return {ErrorCode::kOutOfRange, std::move(m)}; }
inline Error Unavailable(std::string m) {
  return {ErrorCode::kUnavailable, std::move(m)};
}
inline Error ProtocolError(std::string m) {
  return {ErrorCode::kProtocolError, std::move(m)};
}
inline Error ResourceExhausted(std::string m) {
  return {ErrorCode::kResourceExhausted, std::move(m)};
}
inline Error FailedPrecondition(std::string m) {
  return {ErrorCode::kFailedPrecondition, std::move(m)};
}

// Result<T> holds either a value or an Error. Result<void> is spelled
// as the bare Error (use .ok()).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}  // NOLINT
  Result(Error error) : v_(std::in_place_index<1>, std::move(error)) {  // NOLINT
    assert(!std::get<1>(v_).ok() && "Result<T> built from OK error");
  }

  bool ok() const { return v_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<0>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(v_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    static const Error kOk;
    return ok() ? kOk : std::get<1>(v_);
  }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> v_;
};

#define SAMS_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::sams::util::Error sams_err_ = (expr);         \
    if (!sams_err_.ok()) return sams_err_;          \
  } while (0)

#define SAMS_ASSIGN_OR_RETURN(lhs, expr)            \
  auto sams_result_##__LINE__ = (expr);             \
  if (!sams_result_##__LINE__.ok())                 \
    return sams_result_##__LINE__.error();          \
  lhs = std::move(sams_result_##__LINE__).value()

}  // namespace sams::util
