// Minimal leveled logger. Library code logs through this so tests and
// benches can silence or capture output; no global iostream state is
// touched outside the sink.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace sams::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* LogLevelName(LogLevel level);

// Process-wide minimum level; messages below it are formatted lazily
// (the stream body never runs). Default: kWarn so tests stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Redirect log output (used by tests); pass nullptr to restore stderr.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void SetLogSink(LogSink sink);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SAMS_LOG(level)                                                    \
  if (::sams::util::LogLevel::level < ::sams::util::GetLogLevel()) {       \
  } else                                                                   \
    ::sams::util::internal::LogMessage(::sams::util::LogLevel::level,      \
                                       __FILE__, __LINE__)                 \
        .stream()

#define SAMS_CHECK(cond)                                                   \
  if (cond) {                                                              \
  } else                                                                   \
    ::sams::util::internal::CheckFailure(#cond, __FILE__, __LINE__).stream()

namespace internal {

// Fatal check helper: logs and aborts in the destructor.
class CheckFailure {
 public:
  CheckFailure(const char* cond, const char* file, int line);
  [[noreturn]] ~CheckFailure();
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sams::util
