// Statistics collection used throughout the benches: running moments,
// percentile/CDF extraction, and fixed-width text rendering so every
// figure bench prints the same series the paper plots.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sams::util {

// Online mean/variance (Welford) plus min/max; O(1) memory.
class OnlineStats {
 public:
  void Add(double x);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0, m2_ = 0, sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Accumulates raw samples; extracts exact percentiles and CDF points.
// The figure benches keep at most a few hundred thousand samples, so
// exact (sort-based) quantiles are affordable and reproducible.
class Sampler {
 public:
  void Add(double x) { xs_.push_back(x); }
  void Reserve(std::size_t n) { xs_.reserve(n); }

  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double mean() const;

  // p in [0, 100]; linear interpolation between order statistics.
  double Percentile(double p) const;

  // Fraction of samples <= x (empirical CDF evaluated at x).
  double CdfAt(double x) const;

  // (value, cumulative fraction) pairs at `points` evenly spaced ranks,
  // suitable for printing a CDF series.
  struct CdfPoint {
    double value;
    double fraction;
  };
  std::vector<CdfPoint> CdfSeries(std::size_t points = 50) const;

 private:
  void Sort() const;
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

// Simple named-counter bag for server metrics.
class Counters {
 public:
  void Inc(const std::string& name, std::int64_t by = 1);
  std::int64_t Get(const std::string& name) const;
  std::vector<std::pair<std::string, std::int64_t>> Sorted() const;

 private:
  std::vector<std::pair<std::string, std::int64_t>> entries_;
};

// Fixed-width table printer for bench output: matches the "rows the
// paper reports" requirement with aligned, diff-friendly text.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  std::string ToString() const;

  static std::string Num(double v, int precision = 2);
  static std::string Pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sams::util
