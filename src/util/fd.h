// RAII file descriptors plus UNIX-domain socketpair and SCM_RIGHTS
// descriptor passing.
//
// The paper's fork-after-trust master hands an accepted client socket
// to an smtpd process over a UNIX-domain connection (§5.3). We
// implement the real mechanism (sendmsg/recvmsg with SCM_RIGHTS and a
// small task payload) so the delegation path is genuine, even when the
// receiving end is an in-process worker thread.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

#include "util/result.h"

namespace sams::util {

class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  int Release() { return std::exchange(fd_, -1); }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Creates a connected AF_UNIX SOCK_STREAM pair.
Result<std::pair<UniqueFd, UniqueFd>> MakeSocketPair();

// Sets O_NONBLOCK on fd.
Error SetNonBlocking(int fd);

// Upper bound on a delegation task payload (framed below).
inline constexpr std::size_t kMaxFdPayload = 4u << 20;

// Sends `payload` together with file descriptor `fd_to_send` over the
// UNIX socket `channel`. The payload carries the task header the
// master collected before delegation (client IP, MAIL FROM, validated
// RCPTs). The frame is a 4-byte payload length followed by the bytes;
// the descriptor rides the first sendmsg as SCM_RIGHTS ancillary data
// and any remainder of a partially-accepted frame is sent with plain
// send() (EINTR and EAGAIN are retried, so a short socket buffer or a
// non-blocking channel cannot tear the frame). A dead receiver yields
// kUnavailable (EPIPE/ECONNRESET, no SIGPIPE) — the master's
// worker-death detection keys off exactly this.
Error SendFdWithPayload(int channel, int fd_to_send, const std::string& payload);

struct ReceivedFd {
  UniqueFd fd;
  std::string payload;
};

// Receives one descriptor + framed payload; blocks unless `channel` is
// non-blocking (then EAGAIN is waited out with poll). Reads exactly one
// frame — queued tasks behind it are untouched. Returns kUnavailable on
// EOF and kProtocolError on frames over `max_payload`.
Result<ReceivedFd> RecvFdWithPayload(int channel,
                                     std::size_t max_payload = kMaxFdPayload);

// Fully writes / reads `n` bytes on a (possibly signal-interrupted)
// blocking descriptor; used by tests and the threaded server.
Error WriteAll(int fd, const void* data, std::size_t n);
Error ReadAll(int fd, void* data, std::size_t n);

// WriteAll for sockets: send() with MSG_NOSIGNAL so a peer that reset
// the connection surfaces as kUnavailable instead of killing the
// process with SIGPIPE. Gives up with kUnavailable on EAGAIN too —
// a full buffer on a non-blocking socket, or SO_SNDTIMEO expiry on a
// blocking one (slow-loris client not draining its window). Server
// reply paths must use this, never WriteAll — spam bots routinely slam
// the connection mid-reply.
Error SendAll(int fd, const void* data, std::size_t n);

}  // namespace sams::util
