// RAII file descriptors plus UNIX-domain socketpair and SCM_RIGHTS
// descriptor passing.
//
// The paper's fork-after-trust master hands an accepted client socket
// to an smtpd process over a UNIX-domain connection (§5.3). We
// implement the real mechanism (sendmsg/recvmsg with SCM_RIGHTS and a
// small task payload) so the delegation path is genuine, even when the
// receiving end is an in-process worker thread.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

#include "util/result.h"

namespace sams::util {

class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  int Release() { return std::exchange(fd_, -1); }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Creates a connected AF_UNIX SOCK_STREAM pair.
Result<std::pair<UniqueFd, UniqueFd>> MakeSocketPair();

// Sets O_NONBLOCK on fd.
Error SetNonBlocking(int fd);

// Sends `payload` together with file descriptor `fd_to_send` over the
// UNIX socket `channel` (one sendmsg with an SCM_RIGHTS ancillary
// block). The payload carries the task header the master collected
// before delegation (client IP, MAIL FROM, validated RCPTs).
Error SendFdWithPayload(int channel, int fd_to_send, const std::string& payload);

struct ReceivedFd {
  UniqueFd fd;
  std::string payload;
};

// Receives one descriptor + payload; blocks unless `channel` is
// non-blocking. Returns kUnavailable on EOF.
Result<ReceivedFd> RecvFdWithPayload(int channel, std::size_t max_payload = 65536);

// Fully writes / reads `n` bytes on a (possibly signal-interrupted)
// blocking descriptor; used by tests and the threaded server.
Error WriteAll(int fd, const void* data, std::size_t n);
Error ReadAll(int fd, void* data, std::size_t n);

}  // namespace sams::util
