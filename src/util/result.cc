#include "util/result.h"

namespace sams::util {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kCorruption: return "CORRUPTION";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kProtocolError: return "PROTOCOL_ERROR";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
  }
  return "UNKNOWN";
}

}  // namespace sams::util
