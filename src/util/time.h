// Simulated-time primitives shared by the discrete-event core and the
// workload generators.
//
// SimTime is a strong wrapper over a signed 64-bit nanosecond count so
// that simulated timestamps cannot be silently mixed with wall-clock
// values or raw integers. Arithmetic is closed over SimTime/Duration in
// the usual affine-space way (time - time = duration, time + duration =
// time); we keep a single type for both to stay lightweight, mirroring
// std::chrono::nanoseconds semantics.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace sams::util {

class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr SimTime Nanos(std::int64_t n) { return SimTime(n); }
  static constexpr SimTime Micros(std::int64_t n) { return SimTime(n * 1'000); }
  static constexpr SimTime Millis(std::int64_t n) { return SimTime(n * 1'000'000); }
  static constexpr SimTime Seconds(std::int64_t n) { return SimTime(n * 1'000'000'000); }
  static constexpr SimTime Minutes(std::int64_t n) { return Seconds(n * 60); }
  static constexpr SimTime Hours(std::int64_t n) { return Minutes(n * 60); }
  static constexpr SimTime Days(std::int64_t n) { return Hours(n * 24); }

  // Fractional constructors for calibration constants ("0.35 ms").
  static constexpr SimTime MicrosF(double us) {
    return SimTime(static_cast<std::int64_t>(us * 1e3));
  }
  static constexpr SimTime MillisF(double ms) {
    return SimTime(static_cast<std::int64_t>(ms * 1e6));
  }
  static constexpr SimTime SecondsF(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double micros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime rhs) const { return SimTime(ns_ + rhs.ns_); }
  constexpr SimTime operator-(SimTime rhs) const { return SimTime(ns_ - rhs.ns_); }
  constexpr SimTime& operator+=(SimTime rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime(ns_ * k); }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime(ns_ / k); }
  // Scaling by a real factor, used by cost models ("1.7x slower disk").
  constexpr SimTime Scaled(double f) const {
    return SimTime(static_cast<std::int64_t>(static_cast<double>(ns_) * f));
  }

  // Human-readable rendering with an auto-selected unit, for logs.
  std::string ToString() const;

 private:
  std::int64_t ns_ = 0;
};

constexpr SimTime operator*(std::int64_t k, SimTime t) { return t * k; }

// Real monotonic clock in raw nanoseconds — the wall-clock twin of
// SimTime::nanos() so span tracing runs against either timebase.
std::int64_t MonotonicNanos();

}  // namespace sams::util
