// Deterministic random number generation for workload synthesis and
// the discrete-event simulator.
//
// Every experiment seeds its own Rng explicitly, so figure benches are
// bit-reproducible across runs and platforms (we avoid std::
// distributions, whose outputs are implementation-defined, and
// implement the handful of distributions the trace models need).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace sams::util {

// xoshiro256** by Blackman & Vigna, seeded via SplitMix64. Fast, good
// statistical quality, trivially portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(std::uint64_t seed);

  std::uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with the given mean (= 1/rate). Used for Poisson
  // arrival processes (open-system client, Schroeder et al. [24]).
  double Exponential(double mean);

  // Standard normal via Box-Muller (no cached spare: keeps state small
  // and reproducibility trivial).
  double Normal(double mu, double sigma);

  // Log-normal parameterized by the *underlying* normal's mu/sigma.
  // Mail sizes are classically log-normal.
  double LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

  // Pareto (type I) with scale x_m > 0 and shape alpha > 0; heavy tail
  // for per-prefix bot densities.
  double Pareto(double x_m, double alpha);

  // Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t WeightedIndex(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];
};

// Zipf(s, n) sampler over {1..n} with exponent s, using precomputed
// cumulative weights (O(log n) per sample). Spam campaigns hit
// mailboxes with Zipf-like popularity.
class ZipfDistribution {
 public:
  ZipfDistribution(double s, std::size_t n);

  // Returns a rank in [1, n].
  std::size_t Sample(Rng& rng) const;

  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace sams::util
