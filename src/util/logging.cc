#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace sams::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
LogSink g_sink;  // guarded by g_sink_mutex

void Emit(LogLevel level, const std::string& text) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, text);
  } else {
    std::fprintf(stderr, "%s\n", text.c_str());
    std::fflush(stderr);
  }
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip directories for terse prefixes.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() { Emit(level_, stream_.str()); }

CheckFailure::CheckFailure(const char* cond, const char* file, int line) {
  stream_ << "CHECK failed: " << cond << " at " << file << ":" << line << " ";
}

CheckFailure::~CheckFailure() {
  Emit(LogLevel::kError, stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace sams::util
