// Small ASCII string helpers used by the SMTP parser; SMTP verbs are
// case-insensitive ASCII, so we avoid locale-dependent <cctype>.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sams::util {

constexpr char AsciiToUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}
constexpr char AsciiToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string ToUpperAscii(std::string_view s);
std::string ToLowerAscii(std::string_view s);

// Case-insensitive ASCII equality / prefix test.
bool IEquals(std::string_view a, std::string_view b);
bool IStartsWith(std::string_view s, std::string_view prefix);

// Strips leading/trailing spaces and tabs.
std::string_view Trim(std::string_view s);

// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// True if every char is printable ASCII (0x20..0x7e).
bool IsPrintableAscii(std::string_view s);

}  // namespace sams::util
