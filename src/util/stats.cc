#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sams::util {

void OnlineStats::Add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Sampler::Sort() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Sampler::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Sampler::Percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  if (xs_.empty()) return 0.0;
  Sort();
  if (xs_.size() == 1) return xs_[0];
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

double Sampler::CdfAt(double x) const {
  if (xs_.empty()) return 0.0;
  Sort();
  auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  return static_cast<double>(it - xs_.begin()) / static_cast<double>(xs_.size());
}

std::vector<Sampler::CdfPoint> Sampler::CdfSeries(std::size_t points) const {
  std::vector<CdfPoint> out;
  if (xs_.empty() || points == 0) return out;
  Sort();
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points);
    std::size_t idx = static_cast<std::size_t>(
        frac * static_cast<double>(xs_.size()));
    if (idx > 0) --idx;
    out.push_back({xs_[idx], frac});
  }
  return out;
}

void Counters::Inc(const std::string& name, std::int64_t by) {
  for (auto& [k, v] : entries_) {
    if (k == name) {
      v += by;
      return;
    }
  }
  entries_.emplace_back(name, by);
}

std::int64_t Counters::Get(const std::string& name) const {
  for (const auto& [k, v] : entries_) {
    if (k == name) return v;
  }
  return 0;
}

std::vector<std::pair<std::string, std::int64_t>> Counters::Sorted() const {
  auto out = entries_;
  std::sort(out.begin(), out.end());
  return out;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  ";
      // Right-align numeric-looking cells, left-align labels.
      const std::size_t pad = widths[c] - row[c].size();
      os << std::string(pad, ' ') << row[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace sams::util
