#include "util/time.h"

#include <ctime>

#include <cmath>
#include <cstdio>

namespace sams::util {

std::string SimTime::ToString() const {
  char buf[64];
  const double ns = static_cast<double>(ns_);
  if (std::llabs(ns_) < 1'000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  } else if (std::llabs(ns_) < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else if (std::llabs(ns_) < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ns / 1e9);
  }
  return buf;
}

std::int64_t MonotonicNanos() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace sams::util
