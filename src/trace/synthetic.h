// Synthetic traces derived from the Univ trace (§3): keep the mail
// size distribution, dial the controlled parameter.
//
//   * MakeBounceSweepTrace — fixed bounce ratio b (Figure 8's x-axis);
//     sizes follow the Univ model.
//   * MakeRecipientSweepTrace — zero bounces, repeated sequences of
//     mails destined to `sequence_len` distinct mailboxes, each
//     sequence sharing one size drawn from the Univ distribution
//     (the Figures 10/11 controlled workload).
#pragma once

#include <vector>

#include "trace/workload.h"

namespace sams::trace {

struct BounceSweepConfig {
  std::size_t n_sessions = 50'000;
  double bounce_ratio = 0.0;       // bounce + unfinished combined (§4.1)
  double unfinished_share = 0.3;   // of the bounce mass, how much quits early
  std::uint64_t seed = 8;
};

std::vector<SessionSpec> MakeBounceSweepTrace(const BounceSweepConfig& cfg);

struct RecipientSweepConfig {
  std::size_t n_mails = 20'000;   // logical mails (not connections)
  int rcpts_per_connection = 1;   // "rcpt to" fields used per connection
  int sequence_len = 15;          // distinct mailboxes per size-sharing run
  std::uint64_t seed = 10;
};

// Returns one SessionSpec per *connection*; a 15-mailbox sequence sent
// with 5 RCPTs per connection becomes 3 connections of the same size.
std::vector<SessionSpec> MakeRecipientSweepTrace(const RecipientSweepConfig& cfg);

}  // namespace sams::trace
