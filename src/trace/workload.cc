#include "trace/workload.h"

#include <algorithm>
#include <unordered_set>

namespace sams::trace {

const char* SessionKindName(SessionKind kind) {
  switch (kind) {
    case SessionKind::kNormal: return "normal";
    case SessionKind::kBounce: return "bounce";
    case SessionKind::kUnfinished: return "unfinished";
  }
  return "?";
}

std::uint32_t SampleSpamSize(util::Rng& rng) {
  // Median ~4 KiB, 95th pct ~15 KiB: spam is small text/images.
  const double bytes = rng.LogNormal(8.3, 0.8);
  return static_cast<std::uint32_t>(std::clamp(bytes, 300.0, 2.0e6));
}

std::uint32_t SampleHamSize(util::Rng& rng) {
  // Median ~10 KiB with a heavy attachment tail.
  const double bytes = rng.LogNormal(9.2, 1.25);
  return static_cast<std::uint32_t>(std::clamp(bytes, 300.0, 2.5e7));
}

TraceSummary Summarize(const std::string& name,
                       const std::vector<SessionSpec>& sessions) {
  TraceSummary s;
  s.name = name;
  s.connections = sessions.size();
  std::unordered_set<Ipv4> ips;
  std::unordered_set<Prefix24> prefixes;
  std::size_t spam = 0, bounce = 0, unfinished = 0;
  double rcpts = 0;
  std::size_t rcpt_sessions = 0;
  for (const SessionSpec& spec : sessions) {
    ips.insert(spec.client_ip);
    prefixes.insert(Prefix24(spec.client_ip));
    if (spec.is_spam) ++spam;
    switch (spec.kind) {
      case SessionKind::kBounce: ++bounce; break;
      case SessionKind::kUnfinished: ++unfinished; break;
      case SessionKind::kNormal: break;
    }
    if (spec.kind != SessionKind::kUnfinished) {
      rcpts += spec.n_rcpts;
      ++rcpt_sessions;
    }
    s.duration = std::max(s.duration, spec.arrival);
  }
  s.unique_ips = ips.size();
  s.unique_prefixes24 = prefixes.size();
  if (!sessions.empty()) {
    s.spam_ratio = static_cast<double>(spam) / sessions.size();
    s.bounce_ratio = static_cast<double>(bounce) / sessions.size();
    s.unfinished_ratio = static_cast<double>(unfinished) / sessions.size();
  }
  if (rcpt_sessions > 0) s.mean_rcpts = rcpts / static_cast<double>(rcpt_sessions);
  return s;
}

}  // namespace sams::trace
