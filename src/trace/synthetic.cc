#include "trace/synthetic.h"

#include <algorithm>

#include "trace/sinkhole.h"
#include "util/logging.h"

namespace sams::trace {

std::vector<SessionSpec> MakeBounceSweepTrace(const BounceSweepConfig& cfg) {
  SAMS_CHECK(cfg.bounce_ratio >= 0.0 && cfg.bounce_ratio <= 1.0);
  util::Rng rng(cfg.seed);
  std::vector<SessionSpec> sessions;
  sessions.reserve(cfg.n_sessions);
  for (std::size_t i = 0; i < cfg.n_sessions; ++i) {
    SessionSpec spec;
    spec.arrival = SimTime{};  // closed-loop driver ignores arrivals
    spec.client_ip = Ipv4(static_cast<std::uint32_t>(rng.NextU64()));
    if (rng.Bernoulli(cfg.bounce_ratio)) {
      if (rng.Bernoulli(cfg.unfinished_share)) {
        spec.kind = SessionKind::kUnfinished;
        spec.n_rcpts = 0;
        spec.n_valid_rcpts = 0;
      } else {
        spec.kind = SessionKind::kBounce;
        spec.n_rcpts = static_cast<std::uint16_t>(rng.UniformInt(1, 3));
        spec.n_valid_rcpts = 0;
      }
      spec.is_spam = true;
      spec.size_bytes = 0;
    } else {
      spec.kind = SessionKind::kNormal;
      spec.is_spam = rng.Bernoulli(0.67);
      spec.n_rcpts = 1;
      spec.n_valid_rcpts = 1;
      spec.size_bytes =
          spec.is_spam ? SampleSpamSize(rng) : SampleHamSize(rng);
    }
    sessions.push_back(spec);
  }
  return sessions;
}

std::vector<SessionSpec> MakeRecipientSweepTrace(
    const RecipientSweepConfig& cfg) {
  SAMS_CHECK(cfg.rcpts_per_connection >= 1);
  SAMS_CHECK(cfg.sequence_len >= 1);
  util::Rng rng(cfg.seed);
  std::vector<SessionSpec> sessions;
  std::size_t mails_emitted = 0;
  while (mails_emitted < cfg.n_mails) {
    // One sequence: `sequence_len` mailbox deliveries of one mail size
    // (the modified trace of §6.3), split into connections carrying
    // `rcpts_per_connection` RCPTs each.
    const std::uint32_t size = SampleHamSize(rng);
    int remaining = cfg.sequence_len;
    while (remaining > 0) {
      const int batch = std::min(remaining, cfg.rcpts_per_connection);
      SessionSpec spec;
      spec.arrival = SimTime{};
      spec.client_ip = Ipv4(static_cast<std::uint32_t>(rng.NextU64()));
      spec.kind = SessionKind::kNormal;
      spec.is_spam = true;
      spec.size_bytes = size;
      spec.n_rcpts = static_cast<std::uint16_t>(batch);
      spec.n_valid_rcpts = spec.n_rcpts;
      sessions.push_back(spec);
      remaining -= batch;
    }
    ++mails_emitted;
  }
  return sessions;
}

}  // namespace sams::trace
