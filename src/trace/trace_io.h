// Trace serialization: save/load SessionSpec traces as a versioned
// text format, so expensive generations (the 1.86M-connection Univ
// trace) can be produced once and replayed across bench runs, and so
// users can feed their own mail-server logs into the drivers.
//
// Format (one record per line, '|'-separated):
//   sams-trace-v1
//   <arrival_ns>|<client_ip>|<kind>|<spam>|<size>|<rcpts>|<valid_rcpts>
#pragma once

#include <string>
#include <vector>

#include "trace/workload.h"
#include "util/result.h"

namespace sams::trace {

util::Error SaveTrace(const std::string& path,
                      const std::vector<SessionSpec>& sessions);

util::Result<std::vector<SessionSpec>> LoadTrace(const std::string& path);

}  // namespace sams::trace
