#include "trace/ecn.h"

#include <algorithm>
#include <cmath>

namespace sams::trace {

EcnBounceModel::EcnBounceModel(EcnConfig cfg) {
  util::Rng rng(cfg.seed);
  days_.reserve(static_cast<std::size_t>(cfg.n_days));
  for (int d = 0; d < cfg.n_days; ++d) {
    const double progress = static_cast<double>(d) / std::max(1, cfg.n_days - 1);
    EcnDay day;
    day.day_index = d;

    const double trend =
        cfg.bounce_start + (cfg.bounce_end - cfg.bounce_start) * progress;
    const double weekly = 0.006 * std::sin(2.0 * M_PI * d / 7.0);
    day.bounce_ratio = std::clamp(
        trend + weekly + rng.Normal(0.0, cfg.bounce_noise), 0.17, 0.28);

    // Unfinished sessions drift on a ~2 month period: scanners come
    // and go in waves.
    const double slow = cfg.unfinished_swing * std::sin(2.0 * M_PI * d / 63.0);
    day.unfinished_ratio = std::clamp(
        cfg.unfinished_mid + slow + rng.Normal(0.0, cfg.unfinished_noise),
        0.04, 0.16);

    days_.push_back(day);
  }
}

double EcnBounceModel::MeanBounceRatio() const {
  double sum = 0;
  for (const EcnDay& day : days_) sum += day.bounce_ratio;
  return days_.empty() ? 0.0 : sum / static_cast<double>(days_.size());
}

double EcnBounceModel::MeanUnfinishedRatio() const {
  double sum = 0;
  for (const EcnDay& day : days_) sum += day.unfinished_ratio;
  return days_.empty() ? 0.0 : sum / static_cast<double>(days_.size());
}

}  // namespace sams::trace
