#include "trace/sinkhole.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/logging.h"

namespace sams::trace {
namespace {

// Discrete RCPT distribution matching Figure 4: bulk in 5..10, tail to
// 20, a little mass below 5; mean ~7.
constexpr double kRcptWeights[] = {
    /*1*/ 6.0,  /*2*/ 5.0, /*3*/ 5.0, /*4*/ 6.0,  /*5*/ 12.0,
    /*6*/ 13.0, /*7*/ 13.0, /*8*/ 11.0, /*9*/ 8.0, /*10*/ 6.0,
    /*11*/ 4.0, /*12*/ 3.0, /*13*/ 2.5, /*14*/ 2.0, /*15*/ 1.5,
    /*16*/ 0.8, /*17*/ 0.5, /*18*/ 0.4, /*19*/ 0.3, /*20*/ 0.2,
};

}  // namespace

int SampleSinkholeRcpts(util::Rng& rng) {
  static const std::vector<double> weights(std::begin(kRcptWeights),
                                           std::end(kRcptWeights));
  return static_cast<int>(rng.WeightedIndex(weights)) + 1;
}

SinkholeModel::SinkholeModel(SinkholeConfig cfg) : cfg_(cfg) {
  util::Rng rng(cfg_.seed);
  SAMS_CHECK(cfg_.n_ips >= cfg_.n_prefixes)
      << "need at least one bot per prefix";

  // 1. Distinct /24 prefixes in (synthetic) public space.
  std::vector<Prefix24> prefixes;
  {
    std::unordered_set<Prefix24> seen;
    while (seen.size() < cfg_.n_prefixes) {
      // Avoid 0.x, 10.x, 127.x, 224+ to look like routable space.
      const std::uint8_t a =
          static_cast<std::uint8_t>(rng.UniformInt(1, 223));
      if (a == 10 || a == 127) continue;
      const Ipv4 ip(a, static_cast<std::uint8_t>(rng.UniformInt(0, 255)),
                    static_cast<std::uint8_t>(rng.UniformInt(0, 255)), 0);
      seen.insert(Prefix24(ip));
    }
    prefixes.assign(seen.begin(), seen.end());
    std::sort(prefixes.begin(), prefixes.end());
  }

  // 2. CBL density per prefix: discrete Pareto, calibrated to
  //    P(>10) ~ 0.40 and P(>100) ~ 3% (Figure 12 and §7.1 text).
  std::vector<int> cbl(prefixes.size());
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    // x_m = 5.2, alpha = 1.15 (after integer truncation):
    //   P(density > 10)  = (5.2/11)^1.15  ~ 0.42
    //   P(density > 100) = (5.2/101)^1.15 ~ 0.033
    const double x = rng.Pareto(5.2, 1.15);
    cbl[i] = static_cast<int>(std::clamp(x, 1.0, 254.0));
    cbl_density_[prefixes[i]] = cbl[i];
  }

  // 3. Bots per prefix: one each, remainder distributed proportionally
  //    to (cbl-1) and capped by the prefix's listed population.
  std::vector<int> bots(prefixes.size(), 1);
  {
    std::int64_t remaining =
        static_cast<std::int64_t>(cfg_.n_ips - cfg_.n_prefixes);
    double total_weight = 0;
    for (int c : cbl) total_weight += c - 1;
    std::int64_t assigned = 0;
    for (std::size_t i = 0; i < prefixes.size() && total_weight > 0; ++i) {
      const double share = static_cast<double>(cbl[i] - 1) / total_weight;
      int extra = static_cast<int>(
          std::floor(share * static_cast<double>(remaining)));
      extra = std::min(extra, cbl[i] - 1);
      bots[i] += extra;
      assigned += extra;
    }
    // Fix the rounding shortfall one bot at a time on prefixes with
    // slack (deterministic scan order).
    std::int64_t shortfall = remaining - assigned;
    for (std::size_t i = 0; shortfall > 0; i = (i + 1) % prefixes.size()) {
      if (bots[i] < cbl[i] && bots[i] < 254) {
        ++bots[i];
        --shortfall;
      }
    }
  }

  // 4. Concrete bot addresses: distinct host bytes per prefix. Bots
  //    cluster inside one /25 half of the /24 (the infected DHCP pool),
  //    spilling into the other half only when the pool is full — this
  //    is what lets a single /25 bitmap answer cover a prefix's bots.
  std::vector<std::vector<Ipv4>> prefix_bots(prefixes.size());
  bot_ips_.reserve(cfg_.n_ips);
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    const bool upper_half = rng.Bernoulli(0.5);
    const int base = upper_half ? 128 : 0;
    const int lo = upper_half ? 128 : 1;     // skip .0
    const int hi = upper_half ? 254 : 127;   // skip .255
    std::unordered_set<int> hosts;
    const int half_capacity = hi - lo + 1;
    while (static_cast<int>(hosts.size()) < std::min(bots[i], half_capacity)) {
      hosts.insert(static_cast<int>(rng.UniformInt(lo, hi)));
    }
    while (static_cast<int>(hosts.size()) < bots[i]) {
      // Overflow into the other half.
      const int olo = base == 0 ? 128 : 1;
      const int ohi = base == 0 ? 254 : 127;
      hosts.insert(static_cast<int>(rng.UniformInt(olo, ohi)));
    }
    for (int h : hosts) {
      const Ipv4 ip = prefixes[i].Nth(static_cast<std::uint8_t>(h));
      prefix_bots[i].push_back(ip);
      bot_ips_.push_back(ip);
    }
  }
  SAMS_CHECK(bot_ips_.size() == cfg_.n_ips)
      << "bot distribution failed: " << bot_ips_.size();

  // 5. Botnets: contiguous chunks of a shuffled prefix order.
  std::vector<std::size_t> order(prefixes.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng.UniformInt(0, i - 1))]);
  }
  const int n_botnets = std::max(1, cfg_.n_botnets);
  std::vector<std::vector<Ipv4>> botnet_bots(
      static_cast<std::size_t>(n_botnets));
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t botnet = i * static_cast<std::size_t>(n_botnets) /
                               order.size();
    auto& members = botnet_bots[botnet];
    members.insert(members.end(), prefix_bots[order[i]].begin(),
                   prefix_bots[order[i]].end());
  }

  // Prefix -> index lookup for neighbour bursts.
  std::unordered_map<Prefix24, std::size_t> prefix_index;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    prefix_index.emplace(prefixes[i], i);
  }

  // 6. Campaign-structured arrivals.
  sessions_.reserve(cfg_.n_connections);
  double t = 0;  // abstract units; normalized to `duration` at the end
  int campaign_left = 0;
  std::size_t campaign_botnet = 0;
  Ipv4 last_ip;
  bool have_last = false;
  for (std::size_t s = 0; s < cfg_.n_connections; ++s) {
    if (campaign_left == 0) {
      campaign_botnet =
          static_cast<std::size_t>(rng.UniformInt(0, n_botnets - 1));
      campaign_left = static_cast<int>(rng.UniformInt(
          cfg_.campaign_min_sessions, cfg_.campaign_max_sessions));
    }
    --campaign_left;

    Ipv4 ip;
    const double locality_u = have_last ? rng.NextDouble() : 1.0;
    if (locality_u < cfg_.burst_continue_prob) {
      // Burst continuation: the same bot fires again after a short gap.
      ip = last_ip;
      t += rng.Exponential(0.05);
    } else if (locality_u <
               cfg_.burst_continue_prob + cfg_.neighbour_continue_prob) {
      // A neighbouring bot fires next — preferentially from the same
      // /25 (DHCP pools cluster; this is the granularity the bitmap
      // answer covers), falling back to the /24.
      auto it = prefix_index.find(Prefix24(last_ip));
      const auto& neighbours = prefix_bots[it->second];
      const util::Prefix25 half(last_ip);
      std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(neighbours.size()) - 1));
      for (std::size_t probe = 0; probe < neighbours.size(); ++probe) {
        const std::size_t j = (pick + probe) % neighbours.size();
        if (util::Prefix25(neighbours[j]) == half) {
          pick = j;
          break;
        }
      }
      ip = neighbours[pick];
      t += rng.Exponential(0.08);
    } else {
      const bool background = rng.Bernoulli(cfg_.background_fraction);
      const std::vector<Ipv4>& pool =
          background ? bot_ips_ : botnet_bots[campaign_botnet];
      ip = pool[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
      t += rng.Exponential(1.0);
    }
    last_ip = ip;
    have_last = true;
    SessionSpec spec;
    spec.arrival = SimTime::Nanos(static_cast<std::int64_t>(t * 1e6));
    spec.client_ip = ip;
    spec.kind = SessionKind::kNormal;  // the sinkhole accepts everything
    spec.is_spam = true;
    spec.size_bytes = SampleSpamSize(rng);
    spec.n_rcpts = static_cast<std::uint16_t>(SampleSinkholeRcpts(rng));
    spec.n_valid_rcpts = spec.n_rcpts;
    sessions_.push_back(spec);
  }

  // Ensure every bot appears at least once (Table 1's unique-IP count
  // is exact): substitute unused bots into sessions whose client has
  // other appearances left.
  {
    std::unordered_map<Ipv4, int> uses;
    for (const SessionSpec& spec : sessions_) ++uses[spec.client_ip];
    std::vector<Ipv4> unused;
    for (const Ipv4 ip : bot_ips_) {
      if (!uses.contains(ip)) unused.push_back(ip);
    }
    SAMS_CHECK(unused.size() < sessions_.size() / 2)
        << "trace too short to cover the bot population";
    std::size_t cursor = 0;
    for (const Ipv4 ip : unused) {
      for (;; cursor = (cursor + 1) % sessions_.size()) {
        auto it = uses.find(sessions_[cursor].client_ip);
        if (it->second > 1) {
          --it->second;
          sessions_[cursor].client_ip = ip;
          cursor = (cursor + 1) % sessions_.size();
          break;
        }
      }
    }
  }

  // Normalize arrivals onto [0, duration].
  const double scale =
      static_cast<double>(cfg_.duration.nanos()) /
      static_cast<double>(sessions_.back().arrival.nanos());
  for (SessionSpec& spec : sessions_) {
    spec.arrival = SimTime::Nanos(static_cast<std::int64_t>(
        static_cast<double>(spec.arrival.nanos()) * scale));
  }
}

std::vector<Ipv4> SinkholeModel::ListedIps() const {
  // The trace's bots plus additional CBL-listed neighbours up to each
  // prefix's density. Deterministic from the same seed.
  util::Rng rng(cfg_.seed ^ 0xC0FFEE);
  std::unordered_map<Prefix24, std::unordered_set<std::uint32_t>> hosts;
  for (const Ipv4 ip : bot_ips_) {
    hosts[Prefix24(ip)].insert(ip.value() & 0xff);
  }
  std::vector<Ipv4> listed = bot_ips_;
  for (const auto& [prefix, density] : cbl_density_) {
    auto& taken = hosts[prefix];
    while (static_cast<int>(taken.size()) < density) {
      const std::uint32_t h =
          static_cast<std::uint32_t>(rng.UniformInt(1, 254));
      if (taken.insert(h).second) {
        listed.push_back(prefix.Nth(static_cast<std::uint8_t>(h)));
      }
    }
  }
  return listed;
}

}  // namespace sams::trace
