#include "trace/survey.h"

namespace sams::trace {

const std::vector<MtaShare>& FigureOneSurvey() {
  // Transcribed from the paper's Figure 1 bar chart (January 2007
  // fingerprinting study of 400,000 company domains [25]); values are
  // approximate bar heights in percent of total.
  static const std::vector<MtaShare> kSurvey = {
      {"Barracuda", 1.2},
      {"H.Cisco (IronPort)", 1.5},
      {"Concentric", 1.8},
      {"Exim", 2.4},
      {"Qmail", 3.2},
      {"Logic Mail Change", 3.8},
      {"MX Logic", 4.4},
      {"MS Exchange", 6.5},
      {"Postini", 8.2},
      {"Postfix", 9.6},
      {"Sendmail", 12.4},
  };
  return kSurvey;
}

}  // namespace sams::trace
