// Figure 1 — distribution of mail-server software across ~400,000
// company domains, fingerprinted remotely in January 2007 (Simpson &
// Bekman, O'Reilly SysAdmin). This is an external Internet measurement
// the paper reproduces as motivation; it cannot be re-measured
// offline, so the values below are transcribed (approximately — the
// figure is a bar chart) from the paper's Figure 1 and the cited
// survey. The shares shown cover the named servers only; the remainder
// of the fingerprinted domains ran other/unidentified software.
#pragma once

#include <string_view>
#include <vector>

namespace sams::trace {

struct MtaShare {
  std::string_view name;
  double percent;  // of fingerprinted domains
};

// Ordered as plotted in Figure 1 (ascending share).
const std::vector<MtaShare>& FigureOneSurvey();

}  // namespace sams::trace
