#include "trace/univ.h"

#include <algorithm>
#include <unordered_set>

#include "trace/sinkhole.h"
#include "util/logging.h"

namespace sams::trace {
namespace {

// Builds `n_ips` unique addresses spread over `n_prefixes` unique /24s
// (one IP per prefix first, extras sprinkled randomly).
std::vector<Ipv4> MakePopulation(std::size_t n_ips, std::size_t n_prefixes,
                                 util::Rng& rng) {
  SAMS_CHECK(n_ips >= n_prefixes);
  std::unordered_set<Prefix24> prefixes;
  prefixes.reserve(n_prefixes);
  while (prefixes.size() < n_prefixes) {
    const std::uint8_t a = static_cast<std::uint8_t>(rng.UniformInt(1, 223));
    if (a == 10 || a == 127) continue;
    prefixes.insert(Prefix24(
        Ipv4(a, static_cast<std::uint8_t>(rng.UniformInt(0, 255)),
             static_cast<std::uint8_t>(rng.UniformInt(0, 255)), 0)));
  }
  std::vector<Prefix24> prefix_list(prefixes.begin(), prefixes.end());
  // Hosts cluster inside one /25 half per prefix (infected DHCP pools),
  // mirroring the sinkhole population's structure.
  std::unordered_map<Prefix24, std::pair<int, int>> half;  // [lo, hi]
  auto host_range = [&](const Prefix24& p) {
    auto it = half.find(p);
    if (it == half.end()) {
      const bool upper = rng.Bernoulli(0.5);
      it = half.emplace(p, upper ? std::make_pair(128, 254)
                                 : std::make_pair(1, 127)).first;
    }
    return it->second;
  };
  std::unordered_set<Ipv4> ips;
  ips.reserve(n_ips);
  for (const Prefix24& p : prefix_list) {
    const auto [lo, hi] = host_range(p);
    ips.insert(p.Nth(static_cast<std::uint8_t>(rng.UniformInt(lo, hi))));
  }
  while (ips.size() < n_ips) {
    const Prefix24& p = prefix_list[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(prefix_list.size()) - 1))];
    const auto [lo, hi] = host_range(p);
    ips.insert(p.Nth(static_cast<std::uint8_t>(rng.UniformInt(lo, hi))));
  }
  return {ips.begin(), ips.end()};
}

}  // namespace

UnivModel::UnivModel(UnivConfig cfg) : cfg_(cfg) {
  util::Rng rng(cfg_.seed);

  // Populations: ~1.8 spam IPs per /24 (wide botnets); ham relays are
  // fewer, denser. Prefix counts chosen so the union lands near the
  // 344,679 unique /24s of Table 1.
  const std::size_t spam_prefixes =
      std::max<std::size_t>(1, cfg_.n_spam_ips * 10 / 18);
  const std::size_t ham_prefixes =
      std::max<std::size_t>(1, cfg_.n_ham_ips / 2);
  spam_ips_ = MakePopulation(cfg_.n_spam_ips, spam_prefixes, rng);
  const std::vector<Ipv4> ham_ips =
      MakePopulation(cfg_.n_ham_ips, ham_prefixes, rng);

  // Heavy-hitter weighting for stable legitimate relays.
  util::ZipfDistribution ham_zipf(0.9, ham_ips.size());

  // Prefix index of the spam population for neighbour locality.
  std::unordered_map<Prefix24, std::vector<Ipv4>> spam_by_prefix;
  for (const Ipv4 ip : spam_ips_) spam_by_prefix[Prefix24(ip)].push_back(ip);
  Ipv4 last_spam_ip;
  bool have_last_spam = false;

  sessions_.reserve(cfg_.n_connections);
  double t = 0;
  std::size_t next_uncovered_spam = 0;  // ensure every spam IP appears
  std::size_t next_uncovered_ham = 0;
  for (std::size_t s = 0; s < cfg_.n_connections; ++s) {
    t += rng.Exponential(1.0);
    SessionSpec spec;
    spec.arrival = SimTime::Nanos(static_cast<std::int64_t>(t * 1e6));

    const double kind_u = rng.NextDouble();
    if (kind_u < cfg_.unfinished_ratio) {
      spec.kind = SessionKind::kUnfinished;
      spec.is_spam = true;
      spec.n_rcpts = 0;
      spec.n_valid_rcpts = 0;
      spec.size_bytes = 0;
    } else if (kind_u < cfg_.unfinished_ratio + cfg_.bounce_ratio) {
      spec.kind = SessionKind::kBounce;  // random-guessing spam (§4.1)
      spec.is_spam = true;
      spec.n_rcpts = static_cast<std::uint16_t>(rng.UniformInt(1, 5));
      spec.n_valid_rcpts = 0;
      spec.size_bytes = 0;  // never reaches DATA
    } else {
      spec.kind = SessionKind::kNormal;
      spec.is_spam = rng.Bernoulli(cfg_.spam_ratio);
      if (spec.is_spam) {
        spec.n_rcpts = static_cast<std::uint16_t>(SampleSinkholeRcpts(rng));
        spec.size_bytes = SampleSpamSize(rng);
      } else {
        spec.n_rcpts = rng.Bernoulli(0.02) ? 2 : 1;  // mean 1.02 (§4.2)
        spec.size_bytes = SampleHamSize(rng);
      }
      spec.n_valid_rcpts = spec.n_rcpts;
    }

    if (spec.is_spam) {
      const double locality_u = have_last_spam ? rng.NextDouble() : 1.0;
      if (next_uncovered_spam < spam_ips_.size()) {
        spec.client_ip = spam_ips_[next_uncovered_spam++];
      } else if (locality_u < cfg_.burst_continue_prob) {
        spec.client_ip = last_spam_ip;  // bot burst
      } else if (locality_u <
                 cfg_.burst_continue_prob + cfg_.neighbour_continue_prob) {
        const auto& neighbours = spam_by_prefix[Prefix24(last_spam_ip)];
        spec.client_ip = neighbours[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(neighbours.size()) - 1))];
      } else {
        spec.client_ip = spam_ips_[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(spam_ips_.size()) - 1))];
      }
      last_spam_ip = spec.client_ip;
      have_last_spam = true;
    } else {
      if (next_uncovered_ham < ham_ips.size()) {
        spec.client_ip = ham_ips[next_uncovered_ham++];
      } else {
        spec.client_ip = ham_ips[ham_zipf.Sample(rng) - 1];
      }
    }
    sessions_.push_back(spec);
  }

  const double scale = static_cast<double>(cfg_.duration.nanos()) /
                       static_cast<double>(sessions_.back().arrival.nanos());
  for (SessionSpec& spec : sessions_) {
    spec.arrival = SimTime::Nanos(static_cast<std::int64_t>(
        static_cast<double>(spec.arrival.nanos()) * scale));
  }
}

}  // namespace sams::trace
