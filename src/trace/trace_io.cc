#include "trace/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/fd.h"
#include "util/strings.h"

namespace sams::trace {
namespace {

constexpr std::string_view kMagic = "sams-trace-v1";

const char* KindToken(SessionKind kind) {
  switch (kind) {
    case SessionKind::kNormal: return "N";
    case SessionKind::kBounce: return "B";
    case SessionKind::kUnfinished: return "U";
  }
  return "?";
}

bool ParseKind(std::string_view token, SessionKind* kind) {
  if (token == "N") {
    *kind = SessionKind::kNormal;
  } else if (token == "B") {
    *kind = SessionKind::kBounce;
  } else if (token == "U") {
    *kind = SessionKind::kUnfinished;
  } else {
    return false;
  }
  return true;
}

}  // namespace

util::Error SaveTrace(const std::string& path,
                      const std::vector<SessionSpec>& sessions) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return util::IoError("open " + path + ": " + std::strerror(errno));
  }
  std::fprintf(file, "%.*s\n", static_cast<int>(kMagic.size()), kMagic.data());
  for (const SessionSpec& spec : sessions) {
    std::fprintf(file, "%" PRId64 "|%s|%s|%d|%u|%u|%u\n",
                 spec.arrival.nanos(), spec.client_ip.ToString().c_str(),
                 KindToken(spec.kind), spec.is_spam ? 1 : 0, spec.size_bytes,
                 spec.n_rcpts, spec.n_valid_rcpts);
  }
  if (std::fclose(file) != 0) {
    return util::IoError("close " + path + ": " + std::strerror(errno));
  }
  return util::OkError();
}

util::Result<std::vector<SessionSpec>> LoadTrace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return util::IoError("open " + path + ": " + std::strerror(errno));
  }
  std::vector<SessionSpec> sessions;
  char line[256];
  std::size_t line_no = 0;
  util::Error error;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ++line_no;
    std::string_view text(line);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.remove_suffix(1);
    }
    if (line_no == 1) {
      if (text != kMagic) {
        error = util::InvalidArgument(path + ": not a sams-trace-v1 file");
        break;
      }
      continue;
    }
    if (text.empty()) continue;
    const auto fields = util::Split(text, '|');
    if (fields.size() != 7) {
      error = util::Corruption(path + ":" + std::to_string(line_no) +
                               ": expected 7 fields");
      break;
    }
    SessionSpec spec;
    char* end = nullptr;
    spec.arrival = util::SimTime::Nanos(
        std::strtoll(fields[0].c_str(), &end, 10));
    if (end == nullptr || *end != '\0') {
      error = util::Corruption("bad arrival at line " + std::to_string(line_no));
      break;
    }
    auto ip = util::Ipv4::Parse(fields[1]);
    if (!ip) {
      error = util::Corruption("bad ip at line " + std::to_string(line_no));
      break;
    }
    spec.client_ip = *ip;
    if (!ParseKind(fields[2], &spec.kind)) {
      error = util::Corruption("bad kind at line " + std::to_string(line_no));
      break;
    }
    spec.is_spam = fields[3] == "1";
    spec.size_bytes = static_cast<std::uint32_t>(
        std::strtoul(fields[4].c_str(), nullptr, 10));
    spec.n_rcpts = static_cast<std::uint16_t>(
        std::strtoul(fields[5].c_str(), nullptr, 10));
    spec.n_valid_rcpts = static_cast<std::uint16_t>(
        std::strtoul(fields[6].c_str(), nullptr, 10));
    if (spec.n_valid_rcpts > spec.n_rcpts) {
      error = util::Corruption("valid > attempted rcpts at line " +
                               std::to_string(line_no));
      break;
    }
    sessions.push_back(spec);
  }
  std::fclose(file);
  if (!error.ok()) return error;
  if (line_no == 0) return util::InvalidArgument(path + ": empty file");
  return sessions;
}

}  // namespace sams::trace
