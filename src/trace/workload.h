// Workload record types shared by the trace models and the server
// benches.
//
// The paper's traces are unavailable (a private spam sinkhole and a
// university department's mail logs), so sams::trace re-synthesizes
// them from the published statistics: every number in Table 1 and
// every distribution in Figures 3, 4, 12 and 13 is a generator target,
// and the tests pin the generated traces to those targets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ipv4.h"
#include "util/rng.h"
#include "util/time.h"

namespace sams::trace {

using util::Ipv4;
using util::Prefix24;
using util::SimTime;

enum class SessionKind {
  kNormal,      // delivers a mail to >=1 valid recipient
  kBounce,      // all RCPTs hit non-existent mailboxes (550, §4.1)
  kUnfinished,  // handshake abandoned before any mail (§4.1)
};

const char* SessionKindName(SessionKind kind);

// One SMTP connection in a trace.
struct SessionSpec {
  SimTime arrival;       // offset from trace start
  Ipv4 client_ip;
  SessionKind kind = SessionKind::kNormal;
  bool is_spam = false;
  std::uint32_t size_bytes = 0;  // mail size (0 for unfinished)
  std::uint16_t n_rcpts = 1;     // RCPT TO commands attempted
  std::uint16_t n_valid_rcpts = 1;  // of which exist (0 for bounce)
};

// Mail-size models (log-normal; mail sizes are classically heavy
// right-tailed). Parameters give spam a ~4 KiB median and legitimate
// mail a ~10 KiB median with a heavier attachment tail.
std::uint32_t SampleSpamSize(util::Rng& rng);
std::uint32_t SampleHamSize(util::Rng& rng);

// Summary statistics a trace prints for Table 1.
struct TraceSummary {
  std::string name;
  std::size_t connections = 0;
  std::size_t unique_ips = 0;
  std::size_t unique_prefixes24 = 0;
  double spam_ratio = 0.0;
  double bounce_ratio = 0.0;
  double unfinished_ratio = 0.0;
  double mean_rcpts = 0.0;
  SimTime duration;
};

TraceSummary Summarize(const std::string& name,
                       const std::vector<SessionSpec>& sessions);

}  // namespace sams::trace
