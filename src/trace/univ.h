// UnivModel — re-synthesis of the university-department trace
// (November 2007, Table 1):
//
//   1,862,349 connections; 621,124 unique IPs; 344,679 unique /24s;
//   67% spam (SpamAssassin-flagged); legitimate mail averages 1.02
//   recipients per session (§4.2, consistent with Clayton).
//
// Composition:
//   * Legitimate senders come from a stable population of
//     long-lived relay IPs ("legitimate mails originate from long
//     lasting static IPs" §8) — strong per-IP temporal locality but
//     little /24 clustering.
//   * Spam comes from a very wide botnet population (~1.8 IPs per
//     /24): low per-IP volume, which is exactly the workload that
//     defeats per-IP DNS caching (§4.3).
//   * Bounce and unfinished-session ratios follow the ECN
//     measurements (Figure 3): ~22% bounces, ~10% unfinished.
#pragma once

#include <vector>

#include "trace/workload.h"

namespace sams::trace {

struct UnivConfig {
  std::size_t n_connections = 1'862'349;
  std::size_t n_spam_ips = 600'000;
  std::size_t n_ham_ips = 21'124;  // stable relays: unique total 621,124
  SimTime duration = SimTime::Days(30);
  double spam_ratio = 0.67;
  double bounce_ratio = 0.22;      // of all sessions (ECN, Figure 3)
  double unfinished_ratio = 0.10;  // of all sessions (ECN, Figure 3)
  // Spam-arrival temporal locality (weaker than the sinkhole's — the
  // Univ population is far wider, which is why the paper's prefix
  // cache gains only 20% here vs 39% on the sinkhole trace, §8).
  double burst_continue_prob = 0.22;
  double neighbour_continue_prob = 0.13;
  std::uint64_t seed = 20071101;
};

class UnivModel {
 public:
  explicit UnivModel(UnivConfig cfg = {});

  const std::vector<SessionSpec>& sessions() const { return sessions_; }
  const std::vector<Ipv4>& spam_ips() const { return spam_ips_; }

  TraceSummary Summary() const { return Summarize("univ", sessions_); }

 private:
  UnivConfig cfg_;
  std::vector<SessionSpec> sessions_;
  std::vector<Ipv4> spam_ips_;
};

}  // namespace sams::trace
