// SinkholeModel — re-synthesis of the paper's two-month spam-sinkhole
// trace (May–June 2007, Table 1):
//
//   101,692 connections; 19,492 unique IPs; 8,832 unique /24 prefixes.
//
// Structure built in:
//   * Botnet population. Prefixes are grouped into botnets; each /24
//     carries a CBL-blacklist density drawn from a discrete Pareto so
//     that ~40% of prefixes have >10 listed IPs and ~3% have >100
//     (Figure 12). The trace's own bots are a subset of each prefix's
//     listed population.
//   * Campaign arrivals. Spam arrives in campaigns: one botnet sends
//     for a stretch of sessions before another takes over, plus a
//     background of stragglers. Re-hits of a /24 therefore cluster in
//     time much more tightly than re-hits of a single bot, producing
//     the prefix-vs-IP interarrival gap of Figure 13.
//   * Multi-recipient sessions. RCPT counts concentrate in 5..15 with
//     mean ~7 (Figure 4; §6.3 cites the mean).
#pragma once

#include <unordered_map>
#include <vector>

#include "trace/workload.h"

namespace sams::trace {

struct SinkholeConfig {
  std::size_t n_connections = 101'692;
  std::size_t n_ips = 19'492;
  std::size_t n_prefixes = 8'832;
  SimTime duration = SimTime::Days(61);
  int n_botnets = 100;
  // Campaign length in sessions (uniform range).
  int campaign_min_sessions = 300;
  int campaign_max_sessions = 2'500;
  // Fraction of sessions from random background bots (not the active
  // campaign's botnet).
  double background_fraction = 0.10;
  // Bots send short bursts: probability that the next session comes
  // from the same bot after a short gap (geometric burst length,
  // mean 1/(1-p)). Drives the same-IP temporal locality that gives the
  // paper's 73.8% per-IP cache hit ratio (§7.2).
  double burst_continue_prob = 0.28;
  // ...and with this probability the next session comes from a
  // *different* bot in the same /24 (coordinated neighbours behind one
  // subnet) — the prefix-level temporal locality of Figure 13 that
  // per-IP caching cannot exploit.
  double neighbour_continue_prob = 0.16;
  std::uint64_t seed = 20070501;
};

class SinkholeModel {
 public:
  explicit SinkholeModel(SinkholeConfig cfg = {});

  // Sessions sorted by arrival time.
  const std::vector<SessionSpec>& sessions() const { return sessions_; }

  // Every bot IP that appears in the trace.
  const std::vector<Ipv4>& bot_ips() const { return bot_ips_; }

  // CBL-listed population of each /24 (>= bots in the trace from that
  // prefix); drives Figure 12 and seeds the DNSBL databases.
  const std::unordered_map<Prefix24, int>& cbl_density() const {
    return cbl_density_;
  }

  // Expands cbl_density into concrete listed IPs (the trace's bots
  // plus additional listed neighbours in each /24).
  std::vector<Ipv4> ListedIps() const;

  TraceSummary Summary() const { return Summarize("sinkhole", sessions_); }

 private:
  SinkholeConfig cfg_;
  std::vector<SessionSpec> sessions_;
  std::vector<Ipv4> bot_ips_;
  std::unordered_map<Prefix24, int> cbl_density_;
};

// RCPT-count distribution of Figure 4 (shared with the Univ model's
// spam portion): mass concentrated in 5..15, mean ~7.
int SampleSinkholeRcpts(util::Rng& rng);

}  // namespace sams::trace
