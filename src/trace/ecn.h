// EcnBounceModel — the year-long bounce statistics of Figure 3,
// collected at Purdue's Engineering Computer Network mail server
// (~20,000 mailboxes) from Dec 15, 2006 through Jan 2008:
//
//   * daily bounce ratio between ~0.20 and ~0.25, with a slight upward
//     trend over the year;
//   * unfinished-SMTP ratio fluctuating between ~0.05 and ~0.15.
//
// The model produces a deterministic daily series with those bands,
// the trend, a weekly ripple (spam volume dips on weekends relative to
// legitimate traffic) and bounded day-to-day noise.
#pragma once

#include <vector>

#include "util/rng.h"

namespace sams::trace {

struct EcnDay {
  int day_index = 0;  // 0 = Dec 15, 2006
  double bounce_ratio = 0.0;
  double unfinished_ratio = 0.0;
};

struct EcnConfig {
  int n_days = 395;  // Dec 15, 2006 .. mid Jan 2008
  double bounce_start = 0.205;
  double bounce_end = 0.245;  // the "slight increase within a year"
  double bounce_noise = 0.012;
  double unfinished_mid = 0.10;
  double unfinished_swing = 0.04;  // slow oscillation amplitude
  double unfinished_noise = 0.012;
  std::uint64_t seed = 20061215;
};

class EcnBounceModel {
 public:
  explicit EcnBounceModel(EcnConfig cfg = {});

  const std::vector<EcnDay>& days() const { return days_; }

  // Period averages used by the combined-workload experiment (§8).
  double MeanBounceRatio() const;
  double MeanUnfinishedRatio() const;

 private:
  std::vector<EcnDay> days_;
};

}  // namespace sams::trace
