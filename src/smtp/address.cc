#include "smtp/address.h"

#include <utility>

#include "util/strings.h"

namespace sams::smtp {
namespace {

bool IsAtomChar(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
    return true;
  }
  // RFC 5321 atext specials, minus characters that would confuse logs.
  constexpr std::string_view kSpecials = "!#$%&'*+-/=?^_`{|}~";
  return kSpecials.find(c) != std::string_view::npos;
}

bool ValidLocalPart(std::string_view s) {
  if (s.empty() || s.size() > 64) return false;
  bool prev_dot = true;  // leading dot forbidden
  for (char c : s) {
    if (c == '.') {
      if (prev_dot) return false;
      prev_dot = true;
    } else if (IsAtomChar(c)) {
      prev_dot = false;
    } else {
      return false;
    }
  }
  return !prev_dot;  // trailing dot forbidden
}

bool ValidDomain(std::string_view s) {
  if (s.empty() || s.size() > 255) return false;
  bool prev_sep = true;
  for (char c : s) {
    if (c == '.') {
      if (prev_sep) return false;
      prev_sep = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               (c >= '0' && c <= '9') || c == '-') {
      prev_sep = false;
    } else {
      return false;
    }
  }
  return !prev_sep;
}

}  // namespace

Address::Address(std::string local, std::string domain)
    : local_(std::move(local)), domain_(std::move(domain)) {}

std::optional<Address> Address::Parse(std::string_view s) {
  const std::size_t at = s.rfind('@');
  if (at == std::string_view::npos) return std::nullopt;
  const std::string_view local = s.substr(0, at);
  const std::string_view domain = s.substr(at + 1);
  if (!ValidLocalPart(local) || !ValidDomain(domain)) return std::nullopt;
  return Address(std::string(local), std::string(domain));
}

std::optional<Path> Path::Parse(std::string_view s) {
  s = util::Trim(s);
  if (s.size() < 2 || s.front() != '<' || s.back() != '>') return std::nullopt;
  const std::string_view inner = s.substr(1, s.size() - 2);
  if (inner.empty()) return Path();  // null reverse-path "<>"
  if (inner.front() == '@') return std::nullopt;  // source routes rejected
  auto addr = Address::Parse(inner);
  if (!addr) return std::nullopt;
  return Path(std::move(*addr));
}

}  // namespace sams::smtp
