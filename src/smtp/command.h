// SMTP command parsing (RFC 5321 §4.1.1 subset).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "smtp/address.h"

namespace sams::smtp {

enum class Verb {
  kHelo,
  kEhlo,
  kMail,  // MAIL FROM:<path>
  kRcpt,  // RCPT TO:<path>
  kData,
  kRset,
  kNoop,
  kQuit,
  kVrfy,
  kUnknown,
};

const char* VerbName(Verb verb);

struct Command {
  Verb verb = Verb::kUnknown;
  // HELO/EHLO: peer hostname. VRFY: queried mailbox. Unknown: raw verb.
  std::string argument;
  // MAIL/RCPT: the parsed path; nullopt when the path failed to parse,
  // in which case `argument` holds the raw text for the 501 reply.
  std::optional<Path> path;
  // MAIL/RCPT: true when "FROM:"/"TO:" was present but malformed.
  bool bad_path = false;
};

// Parses one command line (CRLF already stripped). Never fails: wire
// garbage parses to Verb::kUnknown for a 500 reply.
Command ParseCommand(std::string_view line);

// Classification of a HELO/EHLO argument (RFC 5321 §4.1.1.1). The
// hardened server validates the argument instead of storing wire
// garbage, and the reputation scorer keys HELO anomaly features off
// the same result: a naked IP where a hostname belongs is a classic
// botnet tell, a malformed argument draws a 501.
enum class HeloKind {
  kHostname,        // plausible domain name
  kAddressLiteral,  // "[1.2.3.4]" — RFC-legal
  kBareIp,          // naked IP, accepted but scored as an anomaly
  kMalformed,       // empty, overlong (>255), control bytes, embedded
                    // whitespace, or invalid hostname characters
};

const char* HeloKindName(HeloKind kind);
HeloKind ClassifyHeloArgument(std::string_view arg);

// Serializers used by the client side.
std::string HeloLine(const std::string& hostname);
std::string EhloLine(const std::string& hostname);
std::string MailFromLine(const Path& reverse_path);
std::string RcptToLine(const Path& forward_path);
std::string DataLine();
std::string QuitLine();
std::string RsetLine();
std::string NoopLine();

}  // namespace sams::smtp
