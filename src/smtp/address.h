// Mailbox addresses and SMTP paths (RFC 5321 §4.1.2 subset).
//
// We accept the dotted local-part / domain syntax real MTAs see in
// practice, including the null reverse-path "<>" that delivery status
// notifications use, and reject source routes (obsolete) and control
// characters.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace sams::smtp {

class Address {
 public:
  Address() = default;
  Address(std::string local, std::string domain);

  // Parses "local@domain" (no angle brackets).
  static std::optional<Address> Parse(std::string_view s);

  const std::string& local() const { return local_; }
  const std::string& domain() const { return domain_; }
  std::string ToString() const { return local_ + "@" + domain_; }

  bool operator==(const Address&) const = default;

 private:
  std::string local_;
  std::string domain_;
};

// An SMTP path: "<local@domain>" or the null path "<>".
class Path {
 public:
  Path() = default;  // null path
  explicit Path(Address addr) : addr_(std::move(addr)) {}

  // Parses "<...>"; empty brackets yield the null path.
  static std::optional<Path> Parse(std::string_view s);

  bool IsNull() const { return !addr_.has_value(); }
  const Address& address() const { return *addr_; }
  std::string ToString() const {
    return addr_ ? "<" + addr_->ToString() + ">" : "<>";
  }

  bool operator==(const Path&) const = default;

 private:
  std::optional<Address> addr_;
};

}  // namespace sams::smtp
