// Dot-stuffing codec for the DATA phase (RFC 5321 §4.5.2).
//
// Encoder: prefixes each body line that starts with '.' with another
// '.', ensures CRLF line endings, and appends the ".\r\n" terminator.
// Decoder: streaming — feed it network chunks, it un-stuffs lines and
// reports when the terminator has been consumed (including how many
// raw bytes of the final chunk belonged to the message, so pipelined
// bytes after the terminator are preserved). Two output modes:
//
//   byte mode (default)  decoded lines accumulate into body().
//   span mode            SetSpanSink() — each decoded line is emitted
//                        as zero or more spans instead of being
//                        copied. A kChunk span aliases the chunk
//                        passed to Feed (valid only while the caller
//                        keeps those bytes — e.g. via a BufferPool
//                        pin); kVolatile aliases decoder-internal
//                        carry storage (valid only during the
//                        callback; copy it); kStatic is static
//                        storage ("\r\n"), valid forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace sams::smtp {

// One-shot encode of a message body for transmission after DATA.
// `body` uses either \n or \r\n line endings; output is normalized to
// CRLF, dot-stuffed, and terminated with ".\r\n".
std::string DotStuffEncode(std::string_view body);

class DotStuffDecoder {
 public:
  // RFC 5321 §4.5.3.1.6 caps text lines at 1000 octets incl. CRLF;
  // real MTAs accept somewhat more. 8 KiB is generous while still
  // bounding what a newline-free DATA stream can make the carry hold.
  // This is the cap ServerSession applies by default; a decoder
  // constructed directly is uncapped (codec round-trips any input).
  static constexpr std::size_t kDefaultMaxLineBytes = 8192;

  enum class SpanKind {
    kChunk,     // aliases the Feed() chunk — pin the chunk to keep it
    kStatic,    // static storage, valid forever
    kVolatile,  // aliases decoder carry state — copy during callback
  };
  using SpanSink = std::function<void(std::string_view, SpanKind)>;

  DotStuffDecoder() = default;
  // max_line_bytes == 0 means unlimited.
  explicit DotStuffDecoder(std::size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  // Switches to span mode (or back to byte mode with nullptr). Spans
  // for one decoded line are emitted contiguously, in order; the
  // terminator line is never emitted.
  void SetSpanSink(SpanSink sink) { sink_ = std::move(sink); }

  struct FeedResult {
    bool finished = false;     // terminator seen
    std::size_t consumed = 0;  // bytes of `chunk` consumed
  };

  // Consumes up to the end of `chunk` or the data terminator,
  // whichever comes first. After finished==true, further Feed calls
  // consume nothing. Bytes of a line beyond max_line_bytes are
  // dropped (the line still terminates normally at its newline and
  // the terminator search continues), and line_overflow() latches so
  // the caller can reject the message.
  FeedResult Feed(std::string_view chunk);

  // The decoded message body (terminator excluded, dot-stuffing
  // removed, CRLF endings preserved). Byte mode only — empty in span
  // mode.
  const std::string& body() const { return body_; }
  std::string TakeBody() { return std::move(body_); }
  bool finished() const { return finished_; }

  // True once any line exceeded max_line_bytes; cleared by Reset.
  bool line_overflow() const { return line_overflow_; }

  // Cumulative decoded body bytes this message, monotone across
  // DiscardBody — size enforcement keeps working after the buffer is
  // dropped.
  std::uint64_t decoded_bytes() const { return decoded_bytes_; }

  // Frees the accumulated body while continuing to parse (used once a
  // message is known rejected, so a multi-MB doomed DATA stream does
  // not sit in memory waiting for its terminator).
  void DiscardBody() {
    body_.clear();
    body_.shrink_to_fit();
  }

  void Reset();

 private:
  // Appends raw line bytes (no LF) to carry_, honoring the cap.
  void AppendCarry(std::string_view bytes);
  // Completes the line held in carry_; true if it was the terminator.
  bool FinishCarriedLine();
  // Completes a line that lies wholly inside the Feed chunk.
  // `raw` excludes the '\n'; the '\n' is at raw.data()+raw.size()
  // (+1 past any '\r'), which lets span mode emit content+CRLF as one
  // contiguous chunk span. True if it was the terminator.
  bool FinishInPlaceLine(std::string_view raw);
  // Shared tail: emits/accumulates a decoded line. `in_chunk` is true
  // when `line` (already \r- and dot-stripped) aliases the Feed chunk
  // and is followed in memory by CRLF.
  bool CommitLine(std::string_view line, bool in_chunk, bool had_cr);

  std::string body_;
  std::string carry_;  // partial raw line straddling Feed calls
  SpanSink sink_;      // null = byte mode
  std::size_t max_line_bytes_ = 0;  // 0 = unlimited
  std::uint64_t decoded_bytes_ = 0;
  bool cur_line_overflow_ = false;
  bool line_overflow_ = false;
  bool finished_ = false;
};

}  // namespace sams::smtp
