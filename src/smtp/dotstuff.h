// Dot-stuffing codec for the DATA phase (RFC 5321 §4.5.2).
//
// Encoder: prefixes each body line that starts with '.' with another
// '.', ensures CRLF line endings, and appends the ".\r\n" terminator.
// Decoder: streaming — feed it network chunks, it un-stuffs lines into
// the message body and reports when the terminator has been consumed
// (including how many raw bytes of the final chunk belonged to the
// message, so pipelined bytes after the terminator are preserved).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace sams::smtp {

// One-shot encode of a message body for transmission after DATA.
// `body` uses either \n or \r\n line endings; output is normalized to
// CRLF, dot-stuffed, and terminated with ".\r\n".
std::string DotStuffEncode(std::string_view body);

class DotStuffDecoder {
 public:
  struct FeedResult {
    bool finished = false;     // terminator seen
    std::size_t consumed = 0;  // bytes of `chunk` consumed
  };

  // Consumes up to the end of `chunk` or the data terminator,
  // whichever comes first. After finished==true, further Feed calls
  // consume nothing.
  FeedResult Feed(std::string_view chunk);

  // The decoded message body (terminator excluded, dot-stuffing
  // removed, CRLF endings preserved).
  const std::string& body() const { return body_; }
  std::string TakeBody() { return std::move(body_); }
  bool finished() const { return finished_; }

  void Reset();

 private:
  std::string body_;
  std::string line_;  // current partial line (raw, still stuffed)
  bool finished_ = false;
};

}  // namespace sams::smtp
