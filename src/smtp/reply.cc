#include "smtp/reply.h"

#include <cstdio>

namespace sams::smtp {

std::string Reply::Serialize() const {
  char head[8];
  std::snprintf(head, sizeof(head), "%d ", static_cast<int>(code));
  return std::string(head) + text + "\r\n";
}

bool ParseReply(std::string_view line, Reply* out, bool* more) {
  // Strip trailing CRLF / LF.
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.size() < 3) return false;
  int code = 0;
  for (int i = 0; i < 3; ++i) {
    if (line[i] < '0' || line[i] > '9') return false;
    code = code * 10 + (line[i] - '0');
  }
  if (code < 200 || code > 599) return false;
  bool continuation = false;
  std::string_view text;
  if (line.size() > 3) {
    if (line[3] == '-') {
      continuation = true;
    } else if (line[3] != ' ') {
      return false;
    }
    text = line.substr(4);
  }
  out->code = static_cast<ReplyCode>(code);
  out->text = std::string(text);
  if (more) *more = continuation;
  return true;
}

Reply BannerReply(const std::string& hostname) {
  return {ReplyCode::kServiceReady, hostname + " ESMTP sams"};
}

Reply OkReply() { return {ReplyCode::kOk, "Ok"}; }

Reply ByeReply(const std::string& hostname) {
  return {ReplyCode::kClosing, hostname + " closing connection"};
}

Reply UserUnknownReply(const std::string& rcpt) {
  return {ReplyCode::kUserUnknown,
          "<" + rcpt + ">: Recipient address rejected: User unknown"};
}

Reply StartMailInputReply() {
  return {ReplyCode::kStartMailInput, "End data with <CR><LF>.<CR><LF>"};
}

Reply BadSequenceReply(const std::string& what) {
  return {ReplyCode::kBadSequence, "Error: " + what};
}

Reply SyntaxErrorReply() {
  return {ReplyCode::kSyntaxError, "Error: command not recognized"};
}

Reply ParamSyntaxErrorReply(const std::string& what) {
  return {ReplyCode::kParamSyntaxError, "Syntax error in " + what};
}

Reply NotImplementedReply(const std::string& verb) {
  return {ReplyCode::kNotImplemented, "Error: command not implemented: " + verb};
}

Reply TooManyRecipientsReply() {
  return {ReplyCode::kInsufficientStorage, "Error: too many recipients"};
}

Reply MessageTooBigReply() {
  return {ReplyCode::kExceededStorage, "Error: message size exceeds limit"};
}

Reply HeloReply(const std::string& hostname) {
  return {ReplyCode::kOk, hostname};
}

Reply BlacklistedReply(const std::string& client_ip, const std::string& zone) {
  return {ReplyCode::kTransactionFailed,
          "Service unavailable; Client host [" + client_ip + "] blocked using " +
              zone};
}

Reply GreylistedReply() {
  return {ReplyCode::kMailboxBusy,
          "Greylisted, please try again later"};
}

}  // namespace sams::smtp
