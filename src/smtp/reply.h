// SMTP reply codes and wire rendering (RFC 5321 §4.2), restricted to
// the subset a 2007-era MTA actually emits.
#pragma once

#include <string>
#include <string_view>

namespace sams::smtp {

enum class ReplyCode : int {
  kServiceReady = 220,
  kClosing = 221,
  kOk = 250,
  kStartMailInput = 354,
  kServiceUnavailable = 421,
  kMailboxBusy = 450,
  kLocalError = 451,
  kInsufficientStorage = 452,
  kSyntaxError = 500,
  kParamSyntaxError = 501,
  kNotImplemented = 502,
  kBadSequence = 503,
  kUserUnknown = 550,       // the bounce reply (§4.1)
  kExceededStorage = 552,
  kTransactionFailed = 554,
};

struct Reply {
  ReplyCode code = ReplyCode::kOk;
  std::string text;

  // "250 OK\r\n"
  std::string Serialize() const;

  bool IsPositive() const { return static_cast<int>(code) < 400; }
  bool IsPermanentFailure() const { return static_cast<int>(code) >= 500; }
  bool IsTransientFailure() const {
    const int c = static_cast<int>(code);
    return c >= 400 && c < 500;
  }
};

// Parses "250 some text\r\n" (or without CRLF). Multi-line replies use
// "250-" continuation; `more` is set when the line is a continuation.
bool ParseReply(std::string_view line, Reply* out, bool* more = nullptr);

// Canned replies shared by server implementations.
Reply BannerReply(const std::string& hostname);
Reply OkReply();
Reply ByeReply(const std::string& hostname);
Reply UserUnknownReply(const std::string& rcpt);
Reply StartMailInputReply();
Reply BadSequenceReply(const std::string& what);
Reply SyntaxErrorReply();
Reply ParamSyntaxErrorReply(const std::string& what);
Reply NotImplementedReply(const std::string& verb);
Reply TooManyRecipientsReply();
Reply MessageTooBigReply();
Reply HeloReply(const std::string& hostname);
Reply BlacklistedReply(const std::string& client_ip, const std::string& zone);
// 450: the reputation gate greylisted this (client, from, rcpt) triple;
// a legitimate MTA queues and retries, a bot almost never does.
Reply GreylistedReply();

}  // namespace sams::smtp
