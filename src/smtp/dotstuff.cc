#include "smtp/dotstuff.h"

namespace sams::smtp {

std::string DotStuffEncode(std::string_view body) {
  std::string out;
  out.reserve(body.size() + body.size() / 64 + 8);
  std::size_t i = 0;
  while (i < body.size()) {
    // Find end of line (either \n or \r\n).
    std::size_t eol = body.find('\n', i);
    std::string_view line;
    if (eol == std::string_view::npos) {
      line = body.substr(i);
      i = body.size();
    } else {
      line = body.substr(i, eol - i);
      i = eol + 1;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty() && line.front() == '.') out.push_back('.');
    out.append(line);
    out.append("\r\n");
  }
  out.append(".\r\n");
  return out;
}

DotStuffDecoder::FeedResult DotStuffDecoder::Feed(std::string_view chunk) {
  FeedResult result;
  if (finished_) {
    result.finished = true;
    return result;
  }
  std::size_t i = 0;
  while (i < chunk.size()) {
    const char c = chunk[i++];
    if (c != '\n') {
      if (max_line_bytes_ != 0 && line_.size() >= max_line_bytes_) {
        // Drop the byte: line_ must not grow without bound on a DATA
        // stream that never sends a newline (RFC 5321 §4.5.3.1.6).
        cur_line_overflow_ = true;
        line_overflow_ = true;
        continue;
      }
      line_.push_back(c);
      continue;
    }
    if (cur_line_overflow_) {
      // The oversized line ends here. Its content is dropped (the
      // message is rejected via line_overflow()), but parsing — and
      // the terminator search — continues on the next line.
      decoded_bytes_ += line_.size() + 2;
      line_.clear();
      cur_line_overflow_ = false;
      continue;
    }
    // Completed a line (strip the \r of CRLF if present).
    std::string_view line = line_;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line == ".") {
      finished_ = true;
      line_.clear();
      result.finished = true;
      result.consumed = i;
      return result;
    }
    if (!line.empty() && line.front() == '.') line.remove_prefix(1);
    body_.append(line);
    body_.append("\r\n");
    decoded_bytes_ += line.size() + 2;
    line_.clear();
  }
  result.consumed = chunk.size();
  return result;
}

void DotStuffDecoder::Reset() {
  body_.clear();
  line_.clear();
  decoded_bytes_ = 0;
  cur_line_overflow_ = false;
  line_overflow_ = false;
  finished_ = false;
}

}  // namespace sams::smtp
