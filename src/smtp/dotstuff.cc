#include "smtp/dotstuff.h"

#include <cstring>

namespace sams::smtp {

std::string DotStuffEncode(std::string_view body) {
  std::string out;
  out.reserve(body.size() + body.size() / 64 + 8);
  std::size_t i = 0;
  while (i < body.size()) {
    // Find end of line (either \n or \r\n).
    std::size_t eol = body.find('\n', i);
    std::string_view line;
    if (eol == std::string_view::npos) {
      line = body.substr(i);
      i = body.size();
    } else {
      line = body.substr(i, eol - i);
      i = eol + 1;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty() && line.front() == '.') out.push_back('.');
    out.append(line);
    out.append("\r\n");
  }
  out.append(".\r\n");
  return out;
}

// The decoder scans each chunk with memchr instead of a byte-at-a-time
// state machine — on large DATA streams the newline search is the hot
// loop, and memchr runs it at SIMD width. Byte-mode observable
// behavior (body bytes, decoded_bytes accounting, overflow latching,
// consumed offsets) is unchanged from the per-byte implementation; the
// dot-stuff span fuzz test holds the two shapes equal.

DotStuffDecoder::FeedResult DotStuffDecoder::Feed(std::string_view chunk) {
  FeedResult result;
  if (finished_) {
    result.finished = true;
    return result;
  }
  std::size_t pos = 0;
  while (pos < chunk.size()) {
    const char* base = chunk.data() + pos;
    const void* nl = std::memchr(base, '\n', chunk.size() - pos);
    if (nl == nullptr) {
      AppendCarry(chunk.substr(pos));
      break;
    }
    const std::size_t nl_idx =
        static_cast<std::size_t>(static_cast<const char*>(nl) - chunk.data());
    const std::string_view raw = chunk.substr(pos, nl_idx - pos);
    bool terminator;
    if (carry_.empty() && !cur_line_overflow_) {
      terminator = FinishInPlaceLine(raw);
    } else {
      AppendCarry(raw);
      terminator = FinishCarriedLine();
    }
    pos = nl_idx + 1;
    if (terminator) {
      finished_ = true;
      result.finished = true;
      result.consumed = pos;
      return result;
    }
  }
  result.consumed = chunk.size();
  return result;
}

void DotStuffDecoder::AppendCarry(std::string_view bytes) {
  if (max_line_bytes_ != 0) {
    const std::size_t room = max_line_bytes_ - carry_.size();
    if (bytes.size() > room) {
      // Drop the excess: the carry must not grow without bound on a
      // DATA stream that never sends a newline (RFC 5321 §4.5.3.1.6).
      carry_.append(bytes.substr(0, room));
      cur_line_overflow_ = true;
      line_overflow_ = true;
      return;
    }
  }
  carry_.append(bytes);
}

bool DotStuffDecoder::FinishInPlaceLine(std::string_view raw) {
  if (max_line_bytes_ != 0 && raw.size() > max_line_bytes_) {
    // Oversized line, wholly in-chunk: account the capped length the
    // carry path would have kept, drop the content, keep parsing.
    line_overflow_ = true;
    decoded_bytes_ += max_line_bytes_ + 2;
    return false;
  }
  std::string_view line = raw;
  const bool had_cr = !line.empty() && line.back() == '\r';
  if (had_cr) line.remove_suffix(1);
  return CommitLine(line, /*in_chunk=*/true, had_cr);
}

bool DotStuffDecoder::FinishCarriedLine() {
  if (cur_line_overflow_) {
    // The oversized line ends here. Its content is dropped (the
    // message is rejected via line_overflow()), but parsing — and the
    // terminator search — continues on the next line.
    decoded_bytes_ += carry_.size() + 2;
    carry_.clear();
    cur_line_overflow_ = false;
    return false;
  }
  std::string_view line = carry_;
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const bool terminator = CommitLine(line, /*in_chunk=*/false,
                                     /*had_cr=*/false);
  carry_.clear();
  return terminator;
}

bool DotStuffDecoder::CommitLine(std::string_view line, bool in_chunk,
                                 bool had_cr) {
  if (line == ".") return true;
  if (!line.empty() && line.front() == '.') line.remove_prefix(1);
  decoded_bytes_ += line.size() + 2;
  if (sink_) {
    if (in_chunk && had_cr) {
      // Content, '\r' and '\n' are contiguous in the Feed chunk: one
      // span covers the whole decoded line including its CRLF.
      sink_(std::string_view(line.data(), line.size() + 2),
            SpanKind::kChunk);
    } else {
      if (!line.empty()) {
        sink_(line, in_chunk ? SpanKind::kChunk : SpanKind::kVolatile);
      }
      sink_(std::string_view("\r\n", 2), SpanKind::kStatic);
    }
  } else {
    body_.append(line);
    body_.append("\r\n");
  }
  return false;
}

void DotStuffDecoder::Reset() {
  body_.clear();
  carry_.clear();
  decoded_bytes_ = 0;
  cur_line_overflow_ = false;
  line_overflow_ = false;
  finished_ = false;
}

}  // namespace sams::smtp
