#include "smtp/client_session.h"

#include <utility>

#include "smtp/command.h"
#include "smtp/dotstuff.h"

namespace sams::smtp {

ClientSession::ClientSession(MailJob job, AbortStage abort)
    : job_(std::move(job)), abort_(abort) {}

std::string ClientSession::Quit(ClientOutcome outcome) {
  outcome_ = outcome;
  state_ = State::kWaitQuitAck;
  return QuitLine();
}

std::optional<std::string> ClientSession::NextAfterRcptPhase() {
  if (next_rcpt_ < job_.rcpts.size()) {
    state_ = State::kWaitRcpt;
    return RcptToLine(job_.rcpts[next_rcpt_++]);
  }
  if (accepted_rcpts_ > 0) {
    state_ = State::kWaitDataGo;
    return DataLine();
  }
  return Quit(ClientOutcome::kAllRejected);
}

std::optional<std::string> ClientSession::OnReply(const Reply& reply) {
  if (done_) return std::nullopt;

  switch (state_) {
    case State::kWaitBanner:
      if (!reply.IsPositive()) {
        done_ = true;
        outcome_ = ClientOutcome::kServerError;
        return std::nullopt;
      }
      if (abort_ == AbortStage::kAfterBanner) {
        return Quit(ClientOutcome::kAborted);
      }
      state_ = State::kWaitHelo;
      return HeloLine(job_.helo);

    case State::kWaitHelo:
      if (!reply.IsPositive()) return Quit(ClientOutcome::kServerError);
      if (abort_ == AbortStage::kAfterHelo) {
        return Quit(ClientOutcome::kAborted);
      }
      state_ = State::kWaitMail;
      return MailFromLine(job_.mail_from);

    case State::kWaitMail:
      if (!reply.IsPositive()) return Quit(ClientOutcome::kServerError);
      if (abort_ == AbortStage::kAfterMail) {
        return Quit(ClientOutcome::kAborted);
      }
      return NextAfterRcptPhase();

    case State::kWaitRcpt:
      if (reply.IsPositive()) {
        ++accepted_rcpts_;
      } else {
        ++rejected_rcpts_;
      }
      return NextAfterRcptPhase();

    case State::kWaitDataGo:
      if (reply.code != ReplyCode::kStartMailInput) {
        return Quit(ClientOutcome::kServerError);
      }
      state_ = State::kWaitDataAck;
      return DotStuffEncode(job_.body);

    case State::kWaitDataAck:
      return Quit(reply.IsPositive() ? ClientOutcome::kDelivered
                                     : ClientOutcome::kServerError);

    case State::kWaitQuitAck:
    case State::kDone:
      done_ = true;
      state_ = State::kDone;
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace sams::smtp
