#include "smtp/server_session.h"

#include <cstdlib>
#include <utility>

#include "util/logging.h"
#include "util/strings.h"

namespace sams::smtp {

const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kConnected: return "CONNECTED";
    case SessionState::kGreeted: return "GREETED";
    case SessionState::kMailGiven: return "MAIL_GIVEN";
    case SessionState::kRcptGiven: return "RCPT_GIVEN";
    case SessionState::kData: return "DATA";
    case SessionState::kClosed: return "CLOSED";
  }
  return "?";
}

ServerSession::ServerSession(SessionConfig cfg, Hooks hooks, std::string client_ip)
    : cfg_(std::move(cfg)), hooks_(std::move(hooks)),
      client_ip_(std::move(client_ip)),
      decoder_(cfg_.max_data_line_bytes) {
  SAMS_CHECK(static_cast<bool>(hooks_.send)) << "send hook required";
  SAMS_CHECK(static_cast<bool>(hooks_.validate_rcpt))
      << "validate_rcpt hook required";
}

void ServerSession::AttachTracer(obs::TraceSink* sink,
                                 std::function<std::int64_t()> clock,
                                 std::uint64_t session_id, obs::Stage first,
                                 std::int64_t start_ns) {
  clock_ = std::move(clock);
  if (sink != nullptr && clock_) {
    span_ = obs::SessionSpan(sink, session_id, first,
                             start_ns >= 0 ? start_ns : clock_());
  }
}

void ServerSession::Start() {
  TraceStage(obs::Stage::kBanner);
  Emit(BannerReply(cfg_.hostname));
}

void ServerSession::Emit(const Reply& reply) {
  if (peer_dead_) return;
  if (!hooks_.send(reply.Serialize())) {
    // The peer is gone (connection reset, send timeout). Abort: stop
    // parsing, stop replying, let the owner tear the session down.
    peer_dead_ = true;
    TraceClose();
    state_ = SessionState::kClosed;
  }
}

void ServerSession::Feed(std::string_view bytes) {
  stats_.bytes_in += bytes.size();
  // Zero-copy fast path: DATA content arriving with nothing buffered
  // ahead of it is decoded straight out of the caller's chunk instead
  // of round-tripping through inbuf_. With a FeedPinned chunk and
  // zero_copy_data set, the decoded spans alias the chunk and only the
  // pin is retained. Behavior (replies, stats, consumed offsets) is
  // identical to the buffered path.
  if (state_ == SessionState::kData && inbuf_.empty() &&
      !pause_requested_ && !rcpt_deferred_ && !bytes.empty()) {
    std::string_view rest = bytes;
    direct_decode_ = true;
    HandleDataBytes(&rest);
    direct_decode_ = false;
    if (rest.empty()) return;
    bytes = rest;  // terminator hit mid-chunk; the tail is commands
  }
  inbuf_.append(bytes);
  std::string_view rest = inbuf_;
  // Tracks read-ahead inside this Feed call: a second complete command
  // handled before the transport could possibly have delivered our
  // reply means the client is pipelining — legal mid-stream, but a
  // strong botnet tell during the pre-trust dialog, so it's counted
  // for the reputation scorer. DATA content never passes through here.
  bool handled_one = false;
  while (!rest.empty() && state_ != SessionState::kClosed &&
         !pause_requested_ && !rcpt_deferred_) {
    if (state_ == SessionState::kData) {
      HandleDataBytes(&rest);
      continue;
    }
    const std::size_t eol = rest.find('\n');
    if (eol == std::string_view::npos) {
      // Guard against unbounded command lines from hostile clients.
      if (rest.size() > cfg_.max_line_length) {
        ++stats_.syntax_errors;
        Emit(SyntaxErrorReply());
        rest = {};
      }
      break;
    }
    std::string_view line = rest.substr(0, eol);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    rest.remove_prefix(eol + 1);
    if (handled_one) ++stats_.pipelined_commands;
    handled_one = true;
    HandleCommand(line);
  }
  inbuf_.erase(0, inbuf_.size() - rest.size());
}

void ServerSession::FeedPinned(std::string_view bytes,
                               const std::shared_ptr<const void>& pin) {
  feed_pin_ = pin != nullptr ? &pin : nullptr;
  Feed(bytes);
  feed_pin_ = nullptr;
}

void ServerSession::OnBodySpan(std::string_view span,
                               DotStuffDecoder::SpanKind kind) {
  switch (kind) {
    case DotStuffDecoder::SpanKind::kStatic:
      rope_.AppendStatic(span);
      return;
    case DotStuffDecoder::SpanKind::kChunk:
      // Only a span over a pinned FeedPinned chunk may be referenced;
      // one over inbuf_ (or an unpinned Feed buffer) must be copied
      // before the storage is reused.
      if (direct_decode_ && feed_pin_ != nullptr) {
        rope_.AppendPinned(span, *feed_pin_);
      } else {
        rope_.AppendCopy(span);
      }
      return;
    case DotStuffDecoder::SpanKind::kVolatile:
      rope_.AppendCopy(span);
      return;
  }
}

void ServerSession::ResolveDeferredRcpt(RcptGateDecision decision) {
  if (!rcpt_deferred_) return;
  rcpt_deferred_ = false;
  if (peer_dead_ || state_ == SessionState::kClosed) return;
  switch (decision) {
    case RcptGateDecision::kReject:
      ++stats_.gate_rejects;
      TraceStage(obs::Stage::kBounce);
      Emit({ReplyCode::kTransactionFailed, "Error: client host blacklisted"});
      TraceClose();
      state_ = SessionState::kClosed;
      return;
    case RcptGateDecision::kGreylist:
      ++stats_.greylisted_rcpts;
      ++greylisted_this_txn_;
      Emit(GreylistedReply());
      break;  // transaction stays in MAIL_GIVEN; client may retry/QUIT
    case RcptGateDecision::kAccept:
    case RcptGateDecision::kDefer:  // not a resolution; treated as accept
      AcceptRcpt(deferred_rcpt_, true);
      break;
  }
  // Anything the client pipelined while the verdict was pending is
  // still buffered; resume parsing it (unless delegation paused us or
  // the emit discovered a dead peer).
  if (!pause_requested_ && !peer_dead_ && state_ != SessionState::kClosed) {
    Feed({});
  }
}

void ServerSession::AcceptRcpt(const Address& addr, bool first) {
  ++stats_.accepted_rcpts;
  rcpts_.push_back(addr);
  state_ = SessionState::kRcptGiven;
  Emit(OkReply());
  // A dead peer must not trigger delegation: the master would ship an
  // already-closed session to a worker.
  if (first && !peer_dead_ && hooks_.on_first_valid_rcpt) {
    hooks_.on_first_valid_rcpt();
  }
}

void ServerSession::HandleDataBytes(std::string_view* bytes) {
  const auto result = decoder_.Feed(*bytes);
  bytes->remove_prefix(result.consumed);
  if (oversized_ || decoder_.decoded_bytes() > cfg_.max_message_bytes) {
    oversized_ = true;
    // The mail is already doomed; don't buffer the rest of it while
    // waiting for the terminator. decoded_bytes() keeps counting.
    decoder_.DiscardBody();
    rope_.Clear();  // also release any pinned receive chunks
  }
  if (!result.finished) return;

  if (oversized_) {
    // Takes precedence over line_overflow: 552 tells the client the
    // size limit, which is the more actionable of the two rejections.
    Emit(MessageTooBigReply());
  } else if (decoder_.line_overflow()) {
    ++stats_.line_overflows;
    Emit({ReplyCode::kSyntaxError, "Error: text line too long"});
  } else {
    Envelope env;
    env.client_ip = client_ip_;
    env.helo = helo_;
    env.mail_from = mail_from_;
    env.rcpt_to = rcpts_;
    if (cfg_.zero_copy_data) {
      rope_.MoveTo(&env.body_parts, &env.body_pins);
      if (hooks_.content_check) {
        // Body tests scan contiguous bytes; materialize for them. The
        // zero-copy win is preserved on the trusted no-content-check
        // configurations the throughput bench measures.
        env.body = env.FlattenedBody();
        env.body_parts.clear();
        env.body_pins.clear();
      }
    } else {
      env.body = decoder_.TakeBody();
    }
    if (hooks_.content_check && !hooks_.content_check(env)) {
      ++stats_.content_rejects;
      Emit({ReplyCode::kTransactionFailed,
            "Error: message content rejected"});
    } else {
      ++stats_.mails_delivered;
      TraceStage(obs::Stage::kDelivery);
      if (hooks_.on_mail) hooks_.on_mail(std::move(env));
      Emit({ReplyCode::kOk, "Ok: queued"});
    }
  }
  ResetTransaction();
  // A send failure inside one of the Emits above already closed the
  // session; do not resurrect it into kGreeted.
  if (!peer_dead_) state_ = SessionState::kGreeted;
}

void ServerSession::ResetTransaction() {
  mail_from_ = Path();
  rcpts_.clear();
  rejected_this_txn_ = 0;
  greylisted_this_txn_ = 0;
  decoder_.Reset();
  rope_.Clear();
  oversized_ = false;
}

void ServerSession::HandleCommand(std::string_view line) {
  ++stats_.commands;
  const Command cmd = ParseCommand(line);

  switch (cmd.verb) {
    case Verb::kHelo:
    case Verb::kEhlo: {
      // Validate instead of storing wire garbage (RFC 5321 §4.1.1.1):
      // empty, overlong, control bytes or embedded whitespace draw a
      // 501. A bare IP or address literal passes but its kind is kept
      // for the reputation scorer's HELO anomaly feature.
      const HeloKind kind = ClassifyHeloArgument(cmd.argument);
      if (kind == HeloKind::kMalformed) {
        ++stats_.syntax_errors;
        ++stats_.helo_rejects;
        Emit(ParamSyntaxErrorReply("HELO requires a valid hostname"));
        return;
      }
      helo_ = cmd.argument;
      helo_kind_ = kind;
      ResetTransaction();
      TraceStage(obs::Stage::kHelo);
      state_ = SessionState::kGreeted;
      Emit(HeloReply(cfg_.hostname));
      return;
    }

    case Verb::kMail:
      if (cfg_.require_helo && state_ == SessionState::kConnected) {
        ++stats_.bad_sequence;
        Emit(BadSequenceReply("send HELO/EHLO first"));
        return;
      }
      if (state_ == SessionState::kMailGiven ||
          state_ == SessionState::kRcptGiven) {
        ++stats_.bad_sequence;
        Emit(BadSequenceReply("nested MAIL command"));
        return;
      }
      if (cmd.bad_path || !cmd.path) {
        ++stats_.syntax_errors;
        Emit(ParamSyntaxErrorReply("MAIL FROM address"));
        return;
      }
      mail_from_ = *cmd.path;
      TraceStage(obs::Stage::kMail);
      state_ = SessionState::kMailGiven;
      Emit(OkReply());
      return;

    case Verb::kRcpt: {
      if (state_ != SessionState::kMailGiven &&
          state_ != SessionState::kRcptGiven) {
        ++stats_.bad_sequence;
        Emit(BadSequenceReply("need MAIL command first"));
        return;
      }
      if (cmd.bad_path || !cmd.path || cmd.path->IsNull()) {
        ++stats_.syntax_errors;
        Emit(ParamSyntaxErrorReply("RCPT TO address"));
        return;
      }
      if (rcpts_.size() >= cfg_.max_recipients) {
        Emit(TooManyRecipientsReply());
        return;
      }
      const Address& addr = cmd.path->address();
      if (!hooks_.validate_rcpt(addr)) {
        ++stats_.rejected_rcpts;
        ++rejected_this_txn_;
        Emit(UserUnknownReply(addr.ToString()));
        return;
      }
      const bool first = state_ != SessionState::kRcptGiven;
      if (first) TraceStage(obs::Stage::kRcpt);
      // The pre-trust policy gate (§4.3 placement) runs on the first
      // VALID recipient, before any acceptance bookkeeping: a rejected
      // or greylisted recipient is never recorded, and a deferred one
      // is parked in deferred_rcpt_ until the verdict lands.
      if (first && !peer_dead_ && hooks_.first_rcpt_gate) {
        switch (hooks_.first_rcpt_gate(client_ip_, addr)) {
          case RcptGateDecision::kAccept:
            break;
          case RcptGateDecision::kReject:
            ++stats_.gate_rejects;
            TraceStage(obs::Stage::kBounce);
            Emit({ReplyCode::kTransactionFailed,
                  "Error: client host blacklisted"});
            TraceClose();
            state_ = SessionState::kClosed;
            return;
          case RcptGateDecision::kGreylist:
            // 450: not taken this time, transaction stays open so a
            // well-behaved MTA can retry after its queue delay.
            ++stats_.greylisted_rcpts;
            ++greylisted_this_txn_;
            Emit(GreylistedReply());
            return;
          case RcptGateDecision::kDefer:
            // The 250 is parked until ResolveDeferredRcpt; Feed stops
            // consuming so pipelined bytes wait in inbuf_.
            ++stats_.deferred_rcpts;
            rcpt_deferred_ = true;
            deferred_rcpt_ = addr;
            return;
        }
      }
      AcceptRcpt(addr, first);
      return;
    }

    case Verb::kData:
      if (state_ != SessionState::kRcptGiven) {
        if (state_ == SessionState::kMailGiven && rejected_this_txn_ > 0) {
          // All RCPTs bounced: postfix answers 554 here.
          TraceStage(obs::Stage::kBounce);
          Emit({ReplyCode::kTransactionFailed, "Error: no valid recipients"});
        } else if (state_ == SessionState::kMailGiven &&
                   greylisted_this_txn_ > 0) {
          // Every recipient was greylisted (450): the failure must stay
          // transient or the client MTA would bounce mail we merely
          // asked it to retry.
          Emit({ReplyCode::kLocalError,
                "Error: no recipients accepted yet, try again later"});
        } else {
          ++stats_.bad_sequence;
          Emit(BadSequenceReply("need RCPT command first"));
        }
        return;
      }
      decoder_.Reset();
      if (cfg_.zero_copy_data) {
        // (Re)bind the span sink here, not in the constructor: the
        // session object may be moved (ResumeFromHandoff) before any
        // DATA arrives, and the sink must capture the final address.
        decoder_.SetSpanSink(
            [this](std::string_view span, DotStuffDecoder::SpanKind kind) {
              OnBodySpan(span, kind);
            });
      }
      oversized_ = false;
      TraceStage(obs::Stage::kData);
      state_ = SessionState::kData;
      Emit(StartMailInputReply());
      return;

    case Verb::kRset:
      ResetTransaction();
      if (state_ != SessionState::kConnected) state_ = SessionState::kGreeted;
      Emit(OkReply());
      return;

    case Verb::kNoop:
      Emit(OkReply());
      return;

    case Verb::kVrfy:
      // Disabled, as on virtually all production MTAs (address
      // harvesting via VRFY predates the RG technique of §4.1).
      Emit(NotImplementedReply("VRFY"));
      return;

    case Verb::kQuit:
      Emit(ByeReply(cfg_.hostname));
      TraceStage(obs::Stage::kQuit);
      TraceClose();
      state_ = SessionState::kClosed;
      if (hooks_.on_quit) hooks_.on_quit();
      return;

    case Verb::kUnknown:
      ++stats_.syntax_errors;
      Emit(SyntaxErrorReply());
      return;
  }
}

util::Result<std::string> ServerSession::SerializeHandoff() const {
  if (state_ != SessionState::kRcptGiven) {
    return util::FailedPrecondition(
        std::string("handoff requires RCPT_GIVEN state, session is ") +
        SessionStateName(state_));
  }
  std::string out;
  out += "ip=" + client_ip_ + "\n";
  out += "helo=" + helo_ + "\n";
  out += "from=" + mail_from_.ToString() + "\n";
  for (const Address& rcpt : rcpts_) {
    out += "rcpt=<" + rcpt.ToString() + ">\n";
  }
  if (span_.attached()) {
    // Span identity + current stage start, so the resuming worker
    // continues this session's trace under the same id.
    out += "trace=" + std::to_string(span_.session_id()) + ":" +
           std::to_string(span_.stage_start_ns()) + "\n";
  }
  out += "buf=" + inbuf_ + "\n";  // pipelined bytes, if any (always last)
  return out;
}

util::Result<ServerSession> ServerSession::ResumeFromHandoff(
    const SessionConfig& cfg, Hooks hooks, const std::string& payload) {
  ServerSession session(cfg, std::move(hooks), "");
  bool have_ip = false, have_from = false;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const std::size_t eol = payload.find('\n', pos);
    if (eol == std::string::npos) {
      return util::ProtocolError("handoff payload: unterminated line");
    }
    const std::string_view line(payload.data() + pos, eol - pos);
    pos = eol + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return util::ProtocolError("handoff payload: missing '='");
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "ip") {
      session.client_ip_ = std::string(value);
      have_ip = true;
    } else if (key == "helo") {
      session.helo_ = std::string(value);
      session.helo_kind_ = ClassifyHeloArgument(value);
    } else if (key == "from") {
      auto path = Path::Parse(value);
      if (!path) return util::ProtocolError("handoff payload: bad from path");
      session.mail_from_ = *path;
      have_from = true;
    } else if (key == "rcpt") {
      auto path = Path::Parse(value);
      if (!path || path->IsNull()) {
        return util::ProtocolError("handoff payload: bad rcpt path");
      }
      session.rcpts_.push_back(path->address());
    } else if (key == "trace") {
      const std::string spec(value);
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) {
        return util::ProtocolError("handoff payload: bad trace field");
      }
      session.handoff_trace_id_ =
          std::strtoull(spec.c_str(), nullptr, 10);
      session.handoff_trace_start_ns_ =
          std::strtoll(spec.c_str() + colon + 1, nullptr, 10);
    } else if (key == "buf") {
      // buf is by construction the final field; its value runs from
      // just after "buf=" to the payload's terminating newline and may
      // itself contain newlines (pipelined commands).
      const std::size_t value_start = eq + 1 + (line.data() - payload.data());
      session.inbuf_ = payload.substr(value_start,
                                      payload.size() - value_start - 1);
      pos = payload.size();
    } else {
      return util::ProtocolError("handoff payload: unknown key");
    }
  }
  if (!have_ip || !have_from || session.rcpts_.empty()) {
    return util::ProtocolError("handoff payload: incomplete");
  }
  // The master accepted these recipients before the handoff; carry the
  // count so the resumed session's stats (and the telemetry record cut
  // from them) don't claim a delivery with zero recipients.
  session.stats_.accepted_rcpts = session.rcpts_.size();
  session.state_ = SessionState::kRcptGiven;
  return session;
}

}  // namespace sams::smtp
