#include "smtp/command.h"

#include "util/ipv4.h"
#include "util/strings.h"

namespace sams::smtp {
namespace {

using util::IEquals;
using util::IStartsWith;
using util::Trim;

// Extracts the path argument of "MAIL FROM:<...>" / "RCPT TO:<...>".
// RFC 5321 allows no space before '<' and optional parameters after.
void ParsePathArgument(std::string_view rest, Command* cmd) {
  rest = Trim(rest);
  // Cut ESMTP parameters ("<p> SIZE=123"): path ends at the first '>'.
  const std::size_t close = rest.find('>');
  if (close != std::string_view::npos) rest = rest.substr(0, close + 1);
  auto path = Path::Parse(rest);
  if (path) {
    cmd->path = std::move(*path);
  } else {
    cmd->bad_path = true;
    cmd->argument = std::string(rest);
  }
}

}  // namespace

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kHelo: return "HELO";
    case Verb::kEhlo: return "EHLO";
    case Verb::kMail: return "MAIL";
    case Verb::kRcpt: return "RCPT";
    case Verb::kData: return "DATA";
    case Verb::kRset: return "RSET";
    case Verb::kNoop: return "NOOP";
    case Verb::kQuit: return "QUIT";
    case Verb::kVrfy: return "VRFY";
    case Verb::kUnknown: return "UNKNOWN";
  }
  return "?";
}

Command ParseCommand(std::string_view line) {
  Command cmd;
  line = Trim(line);

  if (IStartsWith(line, "MAIL FROM:")) {
    cmd.verb = Verb::kMail;
    ParsePathArgument(line.substr(10), &cmd);
    return cmd;
  }
  if (IStartsWith(line, "RCPT TO:")) {
    cmd.verb = Verb::kRcpt;
    ParsePathArgument(line.substr(8), &cmd);
    return cmd;
  }

  // Single-word verbs (+ optional argument).
  const std::size_t sp = line.find(' ');
  const std::string_view verb =
      sp == std::string_view::npos ? line : line.substr(0, sp);
  const std::string_view arg =
      sp == std::string_view::npos ? std::string_view{} : Trim(line.substr(sp + 1));

  if (IEquals(verb, "HELO")) {
    cmd.verb = Verb::kHelo;
    cmd.argument = std::string(arg);
  } else if (IEquals(verb, "EHLO")) {
    cmd.verb = Verb::kEhlo;
    cmd.argument = std::string(arg);
  } else if (IEquals(verb, "DATA")) {
    cmd.verb = Verb::kData;
  } else if (IEquals(verb, "RSET")) {
    cmd.verb = Verb::kRset;
  } else if (IEquals(verb, "NOOP")) {
    cmd.verb = Verb::kNoop;
  } else if (IEquals(verb, "QUIT")) {
    cmd.verb = Verb::kQuit;
  } else if (IEquals(verb, "VRFY")) {
    cmd.verb = Verb::kVrfy;
    cmd.argument = std::string(arg);
  } else if (IEquals(verb, "MAIL") || IEquals(verb, "RCPT")) {
    // "MAIL" / "RCPT" without the FROM:/TO: keyword is a syntax error
    // in the parameters, not an unknown command.
    cmd.verb = IEquals(verb, "MAIL") ? Verb::kMail : Verb::kRcpt;
    cmd.bad_path = true;
    cmd.argument = std::string(arg);
  } else {
    cmd.verb = Verb::kUnknown;
    cmd.argument = std::string(verb);
  }
  return cmd;
}

const char* HeloKindName(HeloKind kind) {
  switch (kind) {
    case HeloKind::kHostname: return "hostname";
    case HeloKind::kAddressLiteral: return "address_literal";
    case HeloKind::kBareIp: return "bare_ip";
    case HeloKind::kMalformed: return "malformed";
  }
  return "?";
}

HeloKind ClassifyHeloArgument(std::string_view arg) {
  if (arg.empty() || arg.size() > 255) return HeloKind::kMalformed;
  // Control bytes and embedded whitespace are disqualifying no matter
  // what shape the rest takes (ParseCommand trims only the edges).
  for (char c : arg) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7f) return HeloKind::kMalformed;
  }
  if (arg.front() == '[' && arg.back() == ']') {
    const std::string inner(arg.substr(1, arg.size() - 2));
    return util::Ipv4::Parse(inner) ? HeloKind::kAddressLiteral
                                    : HeloKind::kMalformed;
  }
  if (util::Ipv4::Parse(std::string(arg))) return HeloKind::kBareIp;
  // Hostname: letters/digits/hyphens in dot-separated labels. Kept
  // deliberately lenient (underscores occur in the wild) but a label
  // may not be empty or start/end with '-'.
  bool prev_dot = true;  // treat start-of-string like a label boundary
  for (std::size_t i = 0; i < arg.size(); ++i) {
    const char c = arg[i];
    const bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_';
    if (c == '.') {
      if (prev_dot) return HeloKind::kMalformed;  // empty label
      if (arg[i - 1] == '-') return HeloKind::kMalformed;
      prev_dot = true;
      continue;
    }
    if (!alnum && c != '-') return HeloKind::kMalformed;
    if (c == '-' && prev_dot) return HeloKind::kMalformed;
    prev_dot = false;
  }
  if (prev_dot || arg.back() == '-') return HeloKind::kMalformed;
  return HeloKind::kHostname;
}

std::string HeloLine(const std::string& hostname) { return "HELO " + hostname + "\r\n"; }
std::string EhloLine(const std::string& hostname) { return "EHLO " + hostname + "\r\n"; }
std::string MailFromLine(const Path& reverse_path) {
  return "MAIL FROM:" + reverse_path.ToString() + "\r\n";
}
std::string RcptToLine(const Path& forward_path) {
  return "RCPT TO:" + forward_path.ToString() + "\r\n";
}
std::string DataLine() { return "DATA\r\n"; }
std::string QuitLine() { return "QUIT\r\n"; }
std::string RsetLine() { return "RSET\r\n"; }
std::string NoopLine() { return "NOOP\r\n"; }

}  // namespace sams::smtp
