// Server-side SMTP session state machine, transport-agnostic.
//
// The same FSM runs in three places: the real epoll server (sams::net),
// the threaded smtpd workers (sams::mta), and — crucially for the
// paper — the fork-after-trust master (§5), which executes the early
// dialog (banner → HELO → MAIL → RCPT) in its event loop and hands the
// session to a worker only after the first *valid* RCPT. The handoff
// payload (SerializeHandoff / ResumeFromHandoff) carries exactly the
// state the paper lists in §5.3: client IP, sender address and the
// validated recipient list.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.h"
#include "smtp/address.h"
#include "smtp/command.h"
#include "smtp/dotstuff.h"
#include "smtp/reply.h"
#include "util/result.h"

namespace sams::smtp {

struct SessionConfig {
  std::string hostname = "mail.sams.test";
  std::size_t max_recipients = 100;
  std::size_t max_message_bytes = 10 * 1024 * 1024;
  std::size_t max_line_length = 2048;  // command lines
  // DATA text lines (RFC 5321 §4.5.3.1.6); a line beyond this latches
  // a 500 rejection at the terminator and its bytes are dropped rather
  // than buffered, so a newline-free stream can't balloon memory.
  std::size_t max_data_line_bytes = DotStuffDecoder::kDefaultMaxLineBytes;
  bool require_helo = true;
  // When set, DATA bytes are decoded into body spans (Envelope
  // body_parts/body_pins) instead of one accumulated string — the
  // zero-copy path (DESIGN.md §14). The transport should feed DATA
  // through FeedPinned so in-chunk spans can be pinned instead of
  // copied. Off by default: the classic copy path stays bit-for-bit.
  bool zero_copy_data = false;
};

// A completed mail transaction.
struct Envelope {
  std::string client_ip;
  std::string helo;
  Path mail_from;
  std::vector<Address> rcpt_to;  // accepted recipients only
  std::string body;
  // Zero-copy alternative to `body`: when non-empty, the message body
  // is the in-order concatenation of these parts and `body` is empty.
  // The parts alias pooled receive buffers (and small owned copies for
  // lines that straddled chunks); `body_pins` keeps that storage alive
  // and must travel wherever the parts go.
  std::vector<std::string_view> body_parts;
  std::vector<std::shared_ptr<const void>> body_pins;

  bool has_parts() const { return !body_parts.empty(); }
  std::size_t body_size() const {
    if (!has_parts()) return body.size();
    std::size_t total = 0;
    for (const std::string_view part : body_parts) total += part.size();
    return total;
  }
  // Contiguous copy of the body (parts concatenated, or `body` as-is).
  std::string FlattenedBody() const {
    if (!has_parts()) return body;
    std::string out;
    out.reserve(body_size());
    for (const std::string_view part : body_parts) out.append(part);
    return out;
  }
};

// Ordered list of decoded body spans plus the pins that keep their
// backing chunks alive — what the zero-copy DATA path accumulates in
// place of a body string. Adjacent spans over the same storage are
// coalesced, so a 16 KiB pooled chunk of CRLF text contributes one
// span, not one per line; pins are deduplicated per chunk.
class BodyRope {
 public:
  // `span` stays valid as long as `pin` is held.
  void AppendPinned(std::string_view span,
                    const std::shared_ptr<const void>& pin) {
    if (!Coalesce(span)) parts_.push_back(span);
    if (pins_.empty() || pins_.back().get() != pin.get()) {
      pins_.push_back(pin);
    }
    size_ += span.size();
  }
  // `span` points at static storage (the decoder's "\r\n").
  void AppendStatic(std::string_view span) {
    if (!Coalesce(span)) parts_.push_back(span);
    size_ += span.size();
  }
  // Copies `span` into rope-owned storage (volatile decoder spans and
  // spans whose backing buffer the caller won't keep alive).
  void AppendCopy(std::string_view span) {
    auto owned = std::make_shared<std::string>(span);
    parts_.push_back(*owned);
    pins_.push_back(std::shared_ptr<const void>(owned, owned->data()));
    size_ += span.size();
  }

  std::size_t size() const { return size_; }

  void MoveTo(std::vector<std::string_view>* parts,
              std::vector<std::shared_ptr<const void>>* pins) {
    *parts = std::move(parts_);
    *pins = std::move(pins_);
    Clear();
  }

  void Clear() {
    parts_.clear();
    pins_.clear();
    size_ = 0;
  }

 private:
  bool Coalesce(std::string_view span) {
    if (parts_.empty()) return false;
    std::string_view& last = parts_.back();
    if (last.data() + last.size() != span.data()) return false;
    last = std::string_view(last.data(), last.size() + span.size());
    return true;
  }

  std::vector<std::string_view> parts_;
  std::vector<std::shared_ptr<const void>> pins_;
  std::size_t size_ = 0;
};

enum class SessionState {
  kConnected,  // banner sent, no HELO yet
  kGreeted,    // HELO/EHLO accepted (or after a completed transaction)
  kMailGiven,  // MAIL FROM accepted
  kRcptGiven,  // at least one RCPT accepted
  kData,       // between 354 and the dot terminator
  kClosed,     // QUIT processed
};

const char* SessionStateName(SessionState state);

struct SessionStats {
  std::uint64_t commands = 0;
  std::uint64_t syntax_errors = 0;
  std::uint64_t bad_sequence = 0;     // 503s: out-of-order commands
  std::uint64_t pipelined_commands = 0;  // commands sent ahead of replies
  std::uint64_t helo_rejects = 0;     // 501s from HELO argument validation
  std::uint64_t accepted_rcpts = 0;
  std::uint64_t rejected_rcpts = 0;  // 550 bounces (§4.1)
  std::uint64_t gate_rejects = 0;    // 554 at RCPT (client blacklisted)
  std::uint64_t greylisted_rcpts = 0;  // 450s from the reputation gate
  std::uint64_t deferred_rcpts = 0;  // RCPT replies parked on the gate
  std::uint64_t content_rejects = 0;  // 554 after DATA (body tests)
  std::uint64_t line_overflows = 0;   // 500 after DATA (line too long)
  std::uint64_t mails_delivered = 0;
  std::uint64_t bytes_in = 0;         // raw bytes the transport fed us
};

// Verdict of Hooks::first_rcpt_gate, the pre-trust policy check that
// runs before the first RCPT's 250 is written. The async DNSBL
// pipeline answers kAccept/kReject when the verdict is already in hand
// (cache hit) and kDefer when the DNS round is still in flight — the
// reply is then withheld until ResolveDeferredRcpt.
enum class RcptGateDecision {
  kAccept,
  kReject,    // 554, session closes: client host is blacklisted
  kGreylist,  // 450, recipient not taken; the transaction continues
  kDefer,     // no reply yet; transport resolves asynchronously
};

class ServerSession {
 public:
  struct Hooks {
    // Sends reply bytes to the client. Required. Returns false when
    // the peer is gone (the transport's send failed, e.g. SendAll hit
    // kUnavailable on a reset connection); the session then aborts —
    // state() drops to kClosed and no further replies are generated —
    // instead of parsing on and answering a dead socket until the
    // read timeout.
    std::function<bool(std::string)> send;
    // Returns true when the recipient mailbox exists. Required.
    std::function<bool(const Address&)> validate_rcpt;
    // Post-DATA content check (§5.2 body tests): return false to
    // reject the mail with 554 instead of queueing it. Optional.
    std::function<bool(const Envelope&)> content_check;
    // Called once per completed mail, before the 250 ack. Optional.
    std::function<void(Envelope&&)> on_mail;
    // Called when the client QUITs. Optional.
    std::function<void()> on_quit;
    // Called after the *first* accepted RCPT of each transaction; the
    // fork-after-trust master uses this as the delegation trigger.
    // Optional.
    std::function<void()> on_first_valid_rcpt;
    // Consulted at the first accepted RCPT of each transaction BEFORE
    // its 250 is emitted (and before on_first_valid_rcpt). This is the
    // paper's §4.3 placement: the DNSBL verdict gates trust, so a
    // blacklisted client is turned away with 554 without ever reaching
    // fork/delegation. The validated recipient rides along so a
    // reputation gate can key its greylist triple (client, sender,
    // recipient). Optional; absent means kAccept.
    std::function<RcptGateDecision(const std::string& client_ip,
                                   const Address& rcpt)>
        first_rcpt_gate;
  };

  ServerSession(SessionConfig cfg, Hooks hooks, std::string client_ip);

  // Records one span per FSM phase into `sink`, timestamped by `clock`
  // (raw nanoseconds — util::MonotonicNanos for the real server, the
  // simulated clock in tests). Call before Start; the span opens at
  // `first` immediately (kAccept for fresh sessions; a worker resuming
  // a handed-off session passes kHandoff and the master-side stage
  // start so the handoff stage covers the actual transfer). Sink and
  // clock must outlive the session.
  void AttachTracer(obs::TraceSink* sink, std::function<std::int64_t()> clock,
                    std::uint64_t session_id,
                    obs::Stage first = obs::Stage::kAccept,
                    std::int64_t start_ns = -1);

  // Enters the kHandoff span stage; the fork-after-trust master calls
  // this just before SerializeHandoff so the in-flight stage (and its
  // start time) travel with the payload.
  void TraceHandoff() { TraceStage(obs::Stage::kHandoff); }

  // Emits the 220 banner. Call once, before Feed.
  void Start();

  // Consumes raw network bytes; drives the FSM, emitting replies and
  // events through the hooks. Reentrant-safe for hook-initiated sends.
  void Feed(std::string_view bytes);

  // Feed variant for pooled receive buffers: `pin` keeps `bytes`
  // alive, so with zero_copy_data set, DATA content decoded straight
  // out of this chunk is referenced (pin retained) instead of copied.
  // Identical to Feed for command bytes and when zero_copy_data is
  // off. `pin` is only used during the call — the session takes its
  // own reference for any span it keeps.
  void FeedPinned(std::string_view bytes,
                  const std::shared_ptr<const void>& pin);

  // Makes Feed stop consuming after the current command, leaving any
  // remaining bytes buffered (they travel with SerializeHandoff). The
  // fork-after-trust master calls this from on_first_valid_rcpt so the
  // session freezes in RCPT_GIVEN state for delegation.
  void RequestPause() { pause_requested_ = true; }
  void ClearPause() { pause_requested_ = false; }
  bool paused() const { return pause_requested_; }

  // True while the first RCPT's reply is withheld on a kDefer gate
  // verdict; Feed buffers (pipelined) input without consuming it.
  bool rcpt_deferred() const { return rcpt_deferred_; }

  // Delivers the asynchronous gate verdict for a deferred first RCPT:
  // kAccept records the recipient, emits the parked 250 and fires
  // on_first_valid_rcpt, then resumes parsing any bytes the client
  // pipelined meanwhile; kReject emits 554 and closes the session;
  // kGreylist emits 450, drops the recipient and returns the
  // transaction to MAIL_GIVEN. (kDefer is not a resolution and is
  // treated as kAccept.) No-op unless rcpt_deferred().
  void ResolveDeferredRcpt(RcptGateDecision decision);
  void ResolveDeferredRcpt(bool accept) {
    ResolveDeferredRcpt(accept ? RcptGateDecision::kAccept
                               : RcptGateDecision::kReject);
  }

  SessionState state() const { return state_; }
  const SessionStats& stats() const { return stats_; }
  const std::string& client_ip() const { return client_ip_; }

  // HELO argument as accepted (empty before HELO) and its
  // classification — the reputation scorer's HELO anomaly features.
  const std::string& helo() const { return helo_; }
  HeloKind helo_kind() const { return helo_kind_; }

  // True once a send hook reported the peer dead; the session is
  // kClosed and every later Emit is suppressed.
  bool peer_dead() const { return peer_dead_; }

  // Pending (accepted) envelope of the in-progress transaction.
  const Path& mail_from() const { return mail_from_; }
  const std::vector<Address>& rcpt_to() const { return rcpts_; }
  // Recipient parked on a kDefer gate verdict (valid while
  // rcpt_deferred()); the async resolver re-keys its greylist triple
  // off this when the verdict finally lands.
  const Address& deferred_rcpt() const { return deferred_rcpt_; }

  // --- fork-after-trust handoff -------------------------------------
  // Serializes the in-progress transaction (valid only in state
  // kRcptGiven, before DATA). Includes any bytes already buffered but
  // not yet parsed, so nothing pipelined is lost across the handoff.
  util::Result<std::string> SerializeHandoff() const;

  // Reconstructs a session in kRcptGiven state from a handoff payload.
  static util::Result<ServerSession> ResumeFromHandoff(
      const SessionConfig& cfg, Hooks hooks, const std::string& payload);

  // Span identity carried in the handoff payload (0 / -1 when the
  // master side was not tracing); the worker passes these back to
  // AttachTracer to continue the master's trace under the same id.
  std::uint64_t handoff_trace_id() const { return handoff_trace_id_; }
  std::int64_t handoff_trace_start_ns() const {
    return handoff_trace_start_ns_;
  }

  // --- telemetry plane (DESIGN.md §11) -------------------------------
  // True while a tracer is attached and the span is still open; the
  // stall watchdog and the event log read the fields below only then.
  bool tracing() const { return span_.attached() && !trace_closed_; }
  // Span identity (0 when never traced).
  std::uint64_t trace_id() const { return span_.session_id(); }
  // Stage the session is currently in, and when it entered it (raw
  // clock_ nanoseconds) — what the stall watchdog compares against.
  obs::Stage trace_stage() const { return span_.stage(); }
  std::int64_t trace_stage_start_ns() const { return span_.stage_start_ns(); }
  // Total time spent in each *completed* stage so far, indexed by
  // obs::Stage. Accumulated locally on stage transitions so a
  // session-outcome event record needs no trace-ring scan.
  const std::array<std::int64_t, obs::kStageCount>& stage_durations_ns()
      const {
    return stage_ns_;
  }

 private:
  void Emit(const Reply& reply);
  void HandleCommand(std::string_view line);
  void HandleDataBytes(std::string_view* bytes);
  // Span-mode sink: routes a decoded body span into rope_, pinning,
  // copying or aliasing static storage depending on its kind and on
  // whether the decode is running over a pinned caller chunk.
  void OnBodySpan(std::string_view span, DotStuffDecoder::SpanKind kind);
  void ResetTransaction();
  // Books a validated first/subsequent RCPT: stats, list, 250, and (on
  // the first) the delegation trigger.
  void AcceptRcpt(const Address& addr, bool first);

  void TraceStage(obs::Stage stage) {
    if (span_.attached() && !trace_closed_) {
      const std::int64_t now = clock_();
      stage_ns_[static_cast<std::size_t>(span_.stage())] +=
          now - span_.stage_start_ns();
      span_.Enter(stage, now);
    }
  }
  // Idempotent: a send failure may close the span mid-command and the
  // QUIT path would otherwise close it a second time.
  void TraceClose() {
    if (span_.attached() && !trace_closed_) {
      const std::int64_t now = clock_();
      stage_ns_[static_cast<std::size_t>(span_.stage())] +=
          now - span_.stage_start_ns();
      span_.Close(now);
      trace_closed_ = true;
    }
  }

  SessionConfig cfg_;
  Hooks hooks_;
  std::string client_ip_;

  SessionState state_ = SessionState::kConnected;
  std::string helo_;
  HeloKind helo_kind_ = HeloKind::kMalformed;  // until HELO accepted
  Path mail_from_;
  std::vector<Address> rcpts_;
  Address deferred_rcpt_;  // parked on a kDefer gate verdict
  std::uint64_t rejected_this_txn_ = 0;
  std::uint64_t greylisted_this_txn_ = 0;

  std::string inbuf_;
  DotStuffDecoder decoder_;
  BodyRope rope_;  // decoded body spans (zero_copy_data mode only)
  // Set while HandleDataBytes decodes directly out of the caller's
  // Feed chunk (nothing buffered in front of it): kChunk spans then
  // alias that chunk and may be pinned via feed_pin_ instead of
  // copied. Spans decoded out of inbuf_ are always copied.
  bool direct_decode_ = false;
  const std::shared_ptr<const void>* feed_pin_ = nullptr;
  bool oversized_ = false;
  bool pause_requested_ = false;
  bool rcpt_deferred_ = false;
  bool peer_dead_ = false;
  bool trace_closed_ = false;

  obs::SessionSpan span_;  // detached unless AttachTracer was called
  std::array<std::int64_t, obs::kStageCount> stage_ns_{};
  std::function<std::int64_t()> clock_;
  std::uint64_t handoff_trace_id_ = 0;       // parsed by ResumeFromHandoff
  std::int64_t handoff_trace_start_ns_ = -1;

  SessionStats stats_;
};

}  // namespace sams::smtp
