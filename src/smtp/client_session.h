// Client-side SMTP dialog state machine.
//
// Drives one mail transaction against a server: HELO → MAIL FROM →
// RCPT (all recipients) → DATA → body → QUIT. Also models the two
// rogue client behaviours the paper measures (§4.1): sessions whose
// recipients all bounce, and sessions deliberately abandoned mid-
// handshake ("unfinished SMTP transactions"). Transport-agnostic:
// callers pass in each server reply and send back whatever bytes the
// session returns.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "smtp/address.h"
#include "smtp/reply.h"

namespace sams::smtp {

struct MailJob {
  std::string helo = "client.sams.test";
  Path mail_from;
  std::vector<Path> rcpts;
  std::string body;  // raw, un-stuffed
};

enum class AbortStage {
  kNone,        // run to completion
  kAfterBanner, // connect, read banner, QUIT
  kAfterHelo,   // HELO then QUIT
  kAfterMail,   // HELO, MAIL FROM then QUIT
};

enum class ClientOutcome {
  kInProgress,
  kDelivered,      // mail accepted (250 after data)
  kAllRejected,    // every RCPT bounced; no DATA attempted
  kAborted,        // we abandoned the session (AbortStage)
  kServerError,    // unexpected negative reply
};

class ClientSession {
 public:
  explicit ClientSession(MailJob job, AbortStage abort = AbortStage::kNone);

  // Processes one server reply; returns the bytes to send next, or
  // nullopt when the session is finished (after our QUIT was acked or
  // the server failed hard).
  std::optional<std::string> OnReply(const Reply& reply);

  ClientOutcome outcome() const { return outcome_; }
  bool done() const { return done_; }
  int accepted_rcpts() const { return accepted_rcpts_; }
  int rejected_rcpts() const { return rejected_rcpts_; }

 private:
  enum class State {
    kWaitBanner,
    kWaitHelo,
    kWaitMail,
    kWaitRcpt,
    kWaitDataGo,   // expect 354
    kWaitDataAck,  // expect 250 after body
    kWaitQuitAck,
    kDone,
  };

  std::string Quit(ClientOutcome outcome);
  std::optional<std::string> NextAfterRcptPhase();

  MailJob job_;
  AbortStage abort_;
  State state_ = State::kWaitBanner;
  std::size_t next_rcpt_ = 0;
  int accepted_rcpts_ = 0;
  int rejected_rcpts_ = 0;
  ClientOutcome outcome_ = ClientOutcome::kInProgress;
  bool done_ = false;
};

}  // namespace sams::smtp
