// pop3_fetch — the retrieval half of the mail system: serve an MFS
// volume over POP3 and fetch a mailbox with a scripted client.
//
// Delivers two mails into a fresh volume (one private, one shared with
// another user), starts the POP3 server, and runs USER/PASS/STAT/LIST/
// RETR/DELE/QUIT against it — showing that deleting a shared mail from
// one mailbox leaves the other recipient's copy intact (§6.1
// refcounting).
//
//   $ ./pop3_fetch
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "net/tcp.h"
#include "pop3/pop3_server.h"
#include "util/rng.h"

int main() {
  const std::string root =
      std::filesystem::temp_directory_path() / "sams_pop3_fetch";
  std::filesystem::remove_all(root);
  auto volume = sams::mfs::MfsVolume::Open(root);
  if (!volume.ok()) {
    std::fprintf(stderr, "volume: %s\n", volume.error().ToString().c_str());
    return 1;
  }

  // Deliver: one private mail to alice, one shared with bob.
  sams::util::Rng rng(5);
  {
    auto alice = (*volume)->MailOpen("alice");
    auto bob = (*volume)->MailOpen("bob");
    sams::mfs::MailFile* only_alice[] = {alice->get()};
    (void)(*volume)->MailNWrite(only_alice, "Subject: private\n\njust for you\n",
                                sams::mfs::MailId::Generate(rng));
    sams::mfs::MailFile* both[] = {alice->get(), bob->get()};
    (void)(*volume)->MailNWrite(both, "Subject: blast\n\nshared once\n",
                                sams::mfs::MailId::Generate(rng));
  }

  sams::pop3::CredentialMap credentials{{"alice", "secret"}};
  sams::pop3::Pop3Server server({}, **volume, std::move(credentials));
  auto port = server.Start();
  if (!port.ok()) {
    std::fprintf(stderr, "start: %s\n", port.error().ToString().c_str());
    return 1;
  }
  std::printf("POP3 server for the MFS volume on 127.0.0.1:%u\n\n", *port);

  auto fd = sams::net::TcpConnect("127.0.0.1", *port);
  if (!fd.ok()) return 1;
  (void)sams::net::SetRecvTimeout(fd->get(), 3'000);
  const char* script[] = {"USER alice", "PASS secret", "STAT",  "LIST",
                          "RETR 2",     "DELE 2",      "QUIT"};
  std::string wire;
  char buf[4096];
  // Read greeting first, then one command per reply burst.
  auto drain = [&] {
    const ssize_t n = ::read(fd->get(), buf, sizeof(buf));
    if (n > 0) wire.append(buf, static_cast<std::size_t>(n));
  };
  drain();
  for (const char* cmd : script) {
    std::string line = std::string(cmd) + "\r\n";
    (void)sams::util::WriteAll(fd->get(), line.data(), line.size());
    std::printf("C: %s\n", cmd);
    drain();
    // Multi-line responses may arrive in pieces; pull until quiet-ish.
    while (wire.find(".\r\n") == std::string::npos &&
           (std::string(cmd) == "LIST" || std::string(cmd) == "RETR 2")) {
      drain();
    }
    for (const auto& reply_line : {wire}) {
      std::printf("S: %s", reply_line.c_str());
    }
    wire.clear();
  }
  server.Stop();

  std::printf("\nafter alice's DELE of the shared mail:\n");
  std::printf("  alice has %zu mail(s), bob still has %zu\n",
              *(*volume)->MailCount("alice"), *(*volume)->MailCount("bob"));
  auto fsck = (*volume)->Fsck();
  std::printf("  fsck: %s\n",
              fsck.ok() && fsck->ok() ? "volume clean" : "ERRORS");
  std::filesystem::remove_all(root);
  return 0;
}
