// mailbox_tool — a small CLI over an MFS volume, built on the paper's
// §6.2 API (mail_open / mail_nwrite / mail_read / mail_delete /
// mail_close).
//
//   mailbox_tool <volume-dir> deliver <body-text> <mailbox> [mailbox...]
//   mailbox_tool <volume-dir> list    <mailbox>
//   mailbox_tool <volume-dir> read    <mailbox> <index>
//   mailbox_tool <volume-dir> delete  <mailbox> <mail-id>
//   mailbox_tool <volume-dir> fsck
//   mailbox_tool <volume-dir> compact
//   mailbox_tool <volume-dir> stats
//
// Example session:
//   $ mailbox_tool /tmp/vol deliver "hello world" alice bob
//   $ mailbox_tool /tmp/vol list alice
//   $ mailbox_tool /tmp/vol fsck
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mfs/paper_api.h"
#include "util/rng.h"

namespace {

using namespace sams::mfs;  // NOLINT: example-local convenience

int Usage() {
  std::fprintf(stderr,
               "usage: mailbox_tool <volume-dir> "
               "deliver|list|read|delete|fsck|compact|stats ...\n");
  return 2;
}

int Deliver(MfsVolume* vol, int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string body = argv[0];
  std::vector<mail_file*> handles;
  for (int i = 1; i < argc; ++i) {
    mail_file* mfd = mail_open(vol, argv[i], "rw");
    if (mfd == nullptr) {
      std::fprintf(stderr, "mail_open %s: %s\n", argv[i], mfs_last_error());
      return 1;
    }
    handles.push_back(mfd);
  }
  sams::util::Rng rng(static_cast<std::uint64_t>(
      std::hash<std::string>{}(body) ^ handles.size()));
  const std::string id = MailId::Generate(rng).str();
  const int rc = mail_nwrite(handles.data(), static_cast<int>(handles.size()),
                             body.data(), id.c_str(),
                             static_cast<int>(body.size()),
                             static_cast<int>(id.size()));
  for (mail_file* mfd : handles) mail_close(mfd);
  if (rc != MFS_OK) {
    std::fprintf(stderr, "mail_nwrite: %s\n", mfs_last_error());
    return 1;
  }
  std::printf("delivered %s to %d mailbox(es)%s\n", id.c_str(), argc - 1,
              argc > 2 ? " (single shared copy)" : "");
  return 0;
}

int List(MfsVolume* vol, const char* mailbox) {
  mail_file* mfd = mail_open(vol, mailbox, "r");
  if (mfd == nullptr) {
    std::fprintf(stderr, "mail_open: %s\n", mfs_last_error());
    return 1;
  }
  int index = 0;
  for (;;) {
    char buf[80];
    char id[MailId::kMaxLen];
    int buf_len = sizeof(buf);
    int id_len = sizeof(id);
    int rc = mail_read(mfd, buf, id, &buf_len, &id_len);
    if (rc == MFS_ERR) break;  // end of mailbox
    std::size_t total = static_cast<std::size_t>(buf_len);
    while (rc == MFS_MORE) {  // count the rest of a long mail
      buf_len = sizeof(buf);
      id_len = sizeof(id);
      rc = mail_read(mfd, buf, id, &buf_len, &id_len);
      total += static_cast<std::size_t>(buf_len);
    }
    std::printf("%3d  %-32.*s  %6zu bytes\n", index++, id_len, id, total);
  }
  std::printf("%d mail(s) in %s\n", index, mailbox);
  mail_close(mfd);
  return 0;
}

int ReadOne(MfsVolume* vol, const char* mailbox, int index) {
  mail_file* mfd = mail_open(vol, mailbox, "r");
  if (mfd == nullptr) return 1;
  if (mail_seek(mfd, index, MFS_SEEK_SET) != MFS_OK) {
    std::fprintf(stderr, "mail_seek: %s\n", mfs_last_error());
    mail_close(mfd);
    return 1;
  }
  char buf[4096];
  char id[MailId::kMaxLen];
  int rc;
  do {
    int buf_len = sizeof(buf);
    int id_len = sizeof(id);
    rc = mail_read(mfd, buf, id, &buf_len, &id_len);
    if (rc == MFS_ERR) {
      std::fprintf(stderr, "mail_read: %s\n", mfs_last_error());
      mail_close(mfd);
      return 1;
    }
    std::fwrite(buf, 1, static_cast<std::size_t>(buf_len), stdout);
  } while (rc == MFS_MORE);
  mail_close(mfd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto vol = MfsVolume::Open(argv[1]);
  if (!vol.ok()) {
    std::fprintf(stderr, "open volume: %s\n", vol.error().ToString().c_str());
    return 1;
  }
  const std::string cmd = argv[2];

  if (cmd == "deliver") return Deliver(vol->get(), argc - 3, argv + 3);
  if (cmd == "list" && argc == 4) return List(vol->get(), argv[3]);
  if (cmd == "read" && argc == 5) {
    return ReadOne(vol->get(), argv[3], std::atoi(argv[4]));
  }
  if (cmd == "delete" && argc == 5) {
    mail_file* mfd = mail_open(vol->get(), argv[3], "rw");
    if (mfd == nullptr) return 1;
    const int rc = mail_delete(mfd, argv[4],
                               static_cast<int>(std::strlen(argv[4])));
    mail_close(mfd);
    if (rc != MFS_OK) {
      std::fprintf(stderr, "mail_delete: %s\n", mfs_last_error());
      return 1;
    }
    std::printf("deleted %s from %s\n", argv[4], argv[3]);
    return 0;
  }
  if (cmd == "fsck") {
    auto report = (*vol)->Fsck();
    if (!report.ok()) {
      std::fprintf(stderr, "fsck: %s\n", report.error().ToString().c_str());
      return 1;
    }
    std::printf("mailboxes %llu, live records %llu, shared records %llu\n",
                static_cast<unsigned long long>(report->mailboxes),
                static_cast<unsigned long long>(report->live_records),
                static_cast<unsigned long long>(report->shared_records));
    for (const std::string& error : report->errors) {
      std::printf("ERROR: %s\n", error.c_str());
    }
    std::printf(report->ok() ? "volume clean\n" : "volume has errors\n");
    return report->ok() ? 0 : 1;
  }
  if (cmd == "compact") {
    auto stats = (*vol)->Compact();
    if (!stats.ok()) {
      std::fprintf(stderr, "compact: %s\n", stats.error().ToString().c_str());
      return 1;
    }
    std::printf("dropped %llu shared + %llu private records, reclaimed %llu "
                "bytes\n",
                static_cast<unsigned long long>(stats->shared_records_dropped),
                static_cast<unsigned long long>(stats->private_records_dropped),
                static_cast<unsigned long long>(stats->bytes_reclaimed));
    return 0;
  }
  if (cmd == "stats") {
    const auto& stats = (*vol)->stats();
    std::printf("nwrites %llu (shared %llu, private %llu)\n",
                static_cast<unsigned long long>(stats.nwrites),
                static_cast<unsigned long long>(stats.shared_writes),
                static_cast<unsigned long long>(stats.private_writes));
    std::printf("bytes deduplicated %llu, collisions rejected %llu\n",
                static_cast<unsigned long long>(stats.bytes_deduplicated),
                static_cast<unsigned long long>(stats.collisions_rejected));
    return 0;
  }
  return Usage();
}
