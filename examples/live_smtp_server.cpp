// live_smtp_server — run the spam-aware SMTP server in the foreground
// and talk to it with any SMTP client (netcat, swaks, telnet...).
//
//   $ ./live_smtp_server [port] [vanilla|hybrid] [mbox|maildir|hardlink|mfs]
//                         [--shards N] [--dnsbl-zones zone:port[,zone:port...]]
//   $ printf 'HELO me\r\nMAIL FROM:<a@b.c>\r\nRCPT TO:<alice@example.test>\r\n
//     DATA\r\nhi\r\n.\r\nQUIT\r\n' | nc 127.0.0.1 <port>
//
// Valid recipients: alice, bob, carol @example.test. Mail lands under
// /tmp/sams_live_server/. SIGINT/SIGTERM triggers a graceful drain:
// the listener stops accepting, in-flight sessions get a grace period
// to finish, the spool queue is flushed (every acked mail reaches its
// mailbox), and the final metrics snapshot is dumped. SIGUSR1 dumps
// the metrics registry (Prometheus text) and recent session traces to
// stdout without stopping the server:
//
//   $ kill -USR1 $(pidof live_smtp_server)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <vector>

#include "mta/smtp_server.h"
#include "obs/export.h"
#include "obs/span.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump = 0;
void HandleSignal(int) { g_stop = 1; }
void HandleDumpSignal(int) { g_dump = 1; }

}  // namespace

int main(int argc, char** argv) {
  // --shards N (anywhere on the line) shards the fork-after-trust
  // pre-trust master across N reactors; --dnsbl-zones zone:port[,...]
  // turns on the async DNSBL pipeline against loopback daemons (run
  // `dnsbl_daemon` first and pass its zone/port here). Positional args
  // keep their meaning with the flags removed.
  int shards = 1;
  std::string dnsbl_zones_arg;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--dnsbl-zones") == 0 && i + 1 < argc) {
      dnsbl_zones_arg = argv[++i];
    } else if (std::strncmp(argv[i], "--dnsbl-zones=", 14) == 0) {
      dnsbl_zones_arg = argv[i] + 14;
    } else {
      positional.push_back(argv[i]);
    }
  }
  std::vector<sams::dnsbl::ZoneEndpoint> dnsbl_zones;
  for (std::size_t pos = 0; pos < dnsbl_zones_arg.size();) {
    std::size_t comma = dnsbl_zones_arg.find(',', pos);
    if (comma == std::string::npos) comma = dnsbl_zones_arg.size();
    const std::string entry = dnsbl_zones_arg.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t colon = entry.rfind(':');
    const int port =
        colon == std::string::npos ? 0 : std::atoi(entry.c_str() + colon + 1);
    if (colon == std::string::npos || colon == 0 || port <= 0 ||
        port > 65535) {
      std::fprintf(stderr, "--dnsbl-zones expects zone:port[,zone:port...], "
                           "got \"%s\"\n", entry.c_str());
      return 2;
    }
    dnsbl_zones.push_back({entry.substr(0, colon),
                           static_cast<std::uint16_t>(port)});
  }
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  const std::uint16_t port =
      !positional.empty() ? static_cast<std::uint16_t>(std::atoi(positional[0]))
                          : 0;
  const bool hybrid =
      positional.size() < 2 || std::strcmp(positional[1], "hybrid") == 0;
  const std::string layout = positional.size() > 2 ? positional[2] : "mfs";

  const std::string root = "/tmp/sams_live_server";
  std::filesystem::create_directories(root);
  sams::util::Result<std::unique_ptr<sams::mfs::MailStore>> store =
      layout == "mbox"      ? sams::mfs::MakeMboxStore(root + "/mbox", {})
      : layout == "maildir" ? sams::mfs::MakeMaildirStore(root + "/maildir", {})
      : layout == "hardlink"
          ? sams::mfs::MakeHardlinkMaildirStore(root + "/hardlink", {})
          : sams::mfs::MakeMfsStore(root + "/mfs", {});
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.error().ToString().c_str());
    return 1;
  }

  sams::mta::RecipientDb recipients;
  for (const char* user : {"alice", "bob", "carol"}) {
    recipients.AddMailbox(user, "example.test");
  }

  sams::mta::RealServerConfig cfg;
  cfg.architecture = hybrid ? sams::mta::Architecture::kForkAfterTrust
                            : sams::mta::Architecture::kThreadPerConnection;
  cfg.worker_count = 4;
  cfg.num_shards = shards;
  cfg.port = port;
  cfg.session.hostname = "live.sams.test";
  // A live server on an open port needs the abuse defenses on: evict
  // idle half-open dialogs, cap pre-trust lifetime, shed overload.
  cfg.master_idle_timeout_ms = 60'000;
  cfg.master_session_deadline_ms = 300'000;
  cfg.max_inflight_sessions = 512;
  if (!dnsbl_zones.empty()) {
    cfg.dnsbl.enabled = true;
    cfg.dnsbl.zones = dnsbl_zones;
  }
  // Declared before the server so bound counters outlive its threads.
  sams::obs::Registry registry;
  sams::obs::TraceSink trace;
  sams::mta::SmtpServer server(cfg, std::move(recipients), **store);
  server.BindObservability(registry, &trace);
  auto bound = server.Start();
  if (!bound.ok()) {
    std::fprintf(stderr, "start: %s\n", bound.error().ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGUSR1, HandleDumpSignal);
  std::printf(
      "live.sams.test listening on 127.0.0.1:%u  [%s architecture, %s "
      "store, %d shard(s)%s]\n"
      "valid recipients: alice|bob|carol @example.test\n"
      "mail lands under %s — Ctrl-C drains and stops, SIGUSR1 dumps "
      "metrics\n",
      *bound, hybrid ? "fork-after-trust" : "thread-per-connection",
      layout.c_str(), server.num_shards(),
      server.handoff_fallback() ? ", handoff fallback" : "", root.c_str());
  if (!dnsbl_zones.empty()) {
    std::printf("async DNSBL pipeline on: %zu zone(s), lookups overlap the "
                "SMTP dialog\n", dnsbl_zones.size());
  }

  while (!g_stop) {
    if (g_dump) {
      g_dump = 0;
      const std::string text = sams::obs::PrometheusText(registry);
      std::fwrite(text.data(), 1, text.size(), stdout);
      const std::string spans = trace.DumpText();
      std::fwrite(spans.data(), 1, spans.size(), stdout);
      std::fflush(stdout);
    }
    struct timespec ts{0, 200'000'000};
    nanosleep(&ts, nullptr);
  }
  // Graceful drain: finish in-flight sessions, flush the spool, stop.
  std::printf("\ndraining (%d in flight)...\n", server.inflight());
  const int leftover = server.Drain(/*grace_ms=*/10'000);
  if (leftover > 0) {
    std::printf("grace expired with %d sessions still open\n", leftover);
  }
  const std::string text = sams::obs::PrometheusText(registry);
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::printf(
      "\nstopped. connections %llu, mails %llu, delegations %llu, "
      "rejected RCPTs %llu\n",
      static_cast<unsigned long long>(server.stats().connections),
      static_cast<unsigned long long>(server.stats().mails_delivered),
      static_cast<unsigned long long>(server.stats().delegations),
      static_cast<unsigned long long>(server.stats().rejected_rcpts));
  return 0;
}
