// live_smtp_server — run the spam-aware SMTP server in the foreground
// and talk to it with any SMTP client (netcat, swaks, telnet...).
//
//   $ ./live_smtp_server [port] [vanilla|hybrid] [mbox|maildir|hardlink|mfs]
//                         [--shards N] [--dnsbl-zones zone:port[,zone:port...]]
//                         [--admin-port N] [--event-log PATH] [--reputation]
//                         [--io-backend epoll|io_uring|auto]
//   $ printf 'HELO me\r\nMAIL FROM:<a@b.c>\r\nRCPT TO:<alice@example.test>\r\n
//     DATA\r\nhi\r\n.\r\nQUIT\r\n' | nc 127.0.0.1 <port>
//
// Valid recipients: alice, bob, carol @example.test. Mail lands under
// /tmp/sams_live_server/. SIGINT/SIGTERM triggers a graceful drain:
// the listener stops accepting, in-flight sessions get a grace period
// to finish, the spool queue is flushed (every acked mail reaches its
// mailbox), and the final metrics snapshot is dumped.
//
// The telemetry plane (DESIGN.md §11) is always on: an admin HTTP
// endpoint (127.0.0.1, --admin-port N to pin, ephemeral otherwise)
// serves
//
//   /metrics   Prometheus text        /vars     JSON snapshot
//   /healthz   per-subsystem readiness (503 when degraded)
//   /spans     recent session traces  /series   time-series rings
//   /reputation  top /24 reputation buckets (with --reputation)
//
// and a structured JSONL event log (stderr, or --event-log PATH)
// records one line per session outcome and operational event. SIGUSR1
// is a thin alias for GET /vars: the handler writes one byte to an
// eventfd and the admin loop prints the snapshot to stdout — no
// signal-unsafe work in the handler itself.
//
//   $ curl -s 127.0.0.1:<admin-port>/healthz
//   $ kill -USR1 $(pidof live_smtp_server)
#include <sys/eventfd.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <vector>

#include "mta/smtp_server.h"
#include "net/admin_http.h"
#include "obs/build_info.h"
#include "obs/event_log.h"
#include "obs/export.h"
#include "obs/series.h"
#include "obs/span.h"
#include "util/time.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
int g_dump_eventfd = -1;
void HandleSignal(int) { g_stop = 1; }
// Async-signal-safe by construction: one write(2) on an eventfd; the
// admin loop thread drains it and does the actual (unsafe) dump work.
void HandleDumpSignal(int) {
  if (g_dump_eventfd >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(g_dump_eventfd, &one, sizeof(one));
  }
}

std::string HealthJson(const std::vector<sams::mta::SubsystemHealth>& health,
                       bool* all_ok) {
  *all_ok = true;
  std::string body = "{\"subsystems\":[";
  bool first = true;
  for (const auto& sub : health) {
    if (!sub.ok) *all_ok = false;
    if (!first) body += ',';
    first = false;
    body += "{\"name\":\"" + sub.name + "\",\"ok\":";
    body += sub.ok ? "true" : "false";
    if (!sub.detail.empty()) body += ",\"detail\":\"" + sub.detail + "\"";
    body += '}';
  }
  body += "],\"status\":\"";
  body += *all_ok ? "ok" : "degraded";
  body += "\"}\n";
  return body;
}

}  // namespace

int main(int argc, char** argv) {
  // --shards N (anywhere on the line) shards the fork-after-trust
  // pre-trust master across N reactors; --dnsbl-zones zone:port[,...]
  // turns on the async DNSBL pipeline against loopback daemons (run
  // `dnsbl_daemon` first and pass its zone/port here). Positional args
  // keep their meaning with the flags removed.
  int shards = 1;
  int admin_port = 0;
  bool reputation = false;
  std::string dnsbl_zones_arg;
  std::string event_log_path;
  std::string io_backend_arg = "epoll";
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--io-backend") == 0 && i + 1 < argc) {
      io_backend_arg = argv[++i];
    } else if (std::strncmp(argv[i], "--io-backend=", 13) == 0) {
      io_backend_arg = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--admin-port") == 0 && i + 1 < argc) {
      admin_port = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--admin-port=", 13) == 0) {
      admin_port = std::atoi(argv[i] + 13);
    } else if (std::strcmp(argv[i], "--event-log") == 0 && i + 1 < argc) {
      event_log_path = argv[++i];
    } else if (std::strncmp(argv[i], "--event-log=", 12) == 0) {
      event_log_path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--dnsbl-zones") == 0 && i + 1 < argc) {
      dnsbl_zones_arg = argv[++i];
    } else if (std::strncmp(argv[i], "--dnsbl-zones=", 14) == 0) {
      dnsbl_zones_arg = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--reputation") == 0) {
      reputation = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  std::vector<sams::dnsbl::ZoneEndpoint> dnsbl_zones;
  for (std::size_t pos = 0; pos < dnsbl_zones_arg.size();) {
    std::size_t comma = dnsbl_zones_arg.find(',', pos);
    if (comma == std::string::npos) comma = dnsbl_zones_arg.size();
    const std::string entry = dnsbl_zones_arg.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t colon = entry.rfind(':');
    const int port =
        colon == std::string::npos ? 0 : std::atoi(entry.c_str() + colon + 1);
    if (colon == std::string::npos || colon == 0 || port <= 0 ||
        port > 65535) {
      std::fprintf(stderr, "--dnsbl-zones expects zone:port[,zone:port...], "
                           "got \"%s\"\n", entry.c_str());
      return 2;
    }
    dnsbl_zones.push_back({entry.substr(0, colon),
                           static_cast<std::uint16_t>(port)});
  }
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  const auto io_backend = sams::net::ParseIoBackendKind(io_backend_arg);
  if (!io_backend.has_value()) {
    std::fprintf(stderr, "--io-backend must be epoll, io_uring or auto\n");
    return 2;
  }
  if (admin_port < 0 || admin_port > 65535) {
    std::fprintf(stderr, "--admin-port must be 0..65535\n");
    return 2;
  }
  const std::uint16_t port =
      !positional.empty() ? static_cast<std::uint16_t>(std::atoi(positional[0]))
                          : 0;
  const bool hybrid =
      positional.size() < 2 || std::strcmp(positional[1], "hybrid") == 0;
  const std::string layout = positional.size() > 2 ? positional[2] : "mfs";

  const std::string root = "/tmp/sams_live_server";
  std::filesystem::create_directories(root);
  sams::util::Result<std::unique_ptr<sams::mfs::MailStore>> store =
      layout == "mbox"      ? sams::mfs::MakeMboxStore(root + "/mbox", {})
      : layout == "maildir" ? sams::mfs::MakeMaildirStore(root + "/maildir", {})
      : layout == "hardlink"
          ? sams::mfs::MakeHardlinkMaildirStore(root + "/hardlink", {})
          : sams::mfs::MakeMfsStore(root + "/mfs", {});
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.error().ToString().c_str());
    return 1;
  }

  sams::mta::RecipientDb recipients;
  for (const char* user : {"alice", "bob", "carol"}) {
    recipients.AddMailbox(user, "example.test");
  }

  sams::mta::RealServerConfig cfg;
  cfg.architecture = hybrid ? sams::mta::Architecture::kForkAfterTrust
                            : sams::mta::Architecture::kThreadPerConnection;
  cfg.worker_count = 4;
  cfg.num_shards = shards;
  cfg.io_backend = *io_backend;
  cfg.port = port;
  cfg.session.hostname = "live.sams.test";
  // A live server on an open port needs the abuse defenses on: evict
  // idle half-open dialogs, cap pre-trust lifetime, shed overload, and
  // snapshot anything stuck in one stage >10 s into the event log.
  cfg.master_idle_timeout_ms = 60'000;
  cfg.master_session_deadline_ms = 300'000;
  cfg.max_inflight_sessions = 512;
  cfg.stall_watchdog_ms = 10'000;
  if (!dnsbl_zones.empty()) {
    cfg.dnsbl.enabled = true;
    cfg.dnsbl.zones = dnsbl_zones;
  }
  if (reputation) {
    // Pre-trust reputation gate (DESIGN.md §12): score each dialog and
    // accept / greylist (450) / reject (554) at the first valid RCPT.
    // min_cmd_gap_ns stays 0 — loopback clients legitimately answer the
    // banner in microseconds, so fast-talker scoring would punish them.
    cfg.reputation.enabled = true;
  }
  // Declared before the server so bound counters outlive its threads.
  sams::obs::Registry registry;
  sams::obs::TraceSink trace;
  sams::obs::RegisterBuildInfo(registry);

  // Structured event log: one JSONL record per session outcome and
  // operational event; SAMS_LOG lines are bridged in as well.
  sams::obs::EventLog::Options log_opts;
  log_opts.path = event_log_path;  // empty = stderr
  sams::obs::EventLog event_log(log_opts);
  event_log.InstallLogBridge();
  event_log.BindMetrics(registry);

  sams::mta::SmtpServer server(cfg, std::move(recipients), **store);
  server.BindObservability(registry, &trace);
  server.BindEventLog(&event_log);
  auto bound = server.Start();
  if (!bound.ok()) {
    std::fprintf(stderr, "start: %s\n", bound.error().ToString().c_str());
    return 1;
  }

  // Time-series rings: snapshot the saturation-relevant instruments
  // every 100 ms for the /series endpoint.
  sams::obs::TimeSeries series;
  series.BindMetrics(registry);
  series.AddGaugeProbe(registry, "inflight_sessions",
                       "sams_smtp_inflight_sessions",
                       {{"arch", hybrid ? "fork-after-trust"
                                        : "thread-per-connection"}});
  for (int i = 0; i < server.num_shards(); ++i) {
    const sams::obs::Labels labels = {{"shard", std::to_string(i)}};
    const std::string suffix = ".shard" + std::to_string(i);
    series.AddGaugeProbe(registry, "shard_sessions" + suffix,
                         "sams_smtp_shard_sessions", labels);
    series.AddCounterProbe(registry, "shard_accepted" + suffix,
                           "sams_smtp_shard_accepted_total", labels);
    series.AddCounterProbe(registry, "shard_sheds" + suffix,
                           "sams_smtp_shard_sheds_total", labels);
  }
  if (server.num_shards() > 1) {
    series.AddGaugeProbe(registry, "shard_imbalance",
                         "sams_smtp_shard_imbalance");
  }
  if (!dnsbl_zones.empty() && hybrid) {
    const sams::obs::Labels arch = {{"arch", "fork-after-trust"}};
    series.AddPercentileProbe(registry, "rcpt_stall_ms_p99",
                              "sams_smtp_dnsbl_rcpt_stall_ms", 99.0, arch);
    series.AddPercentileProbe(registry, "rcpt_stall_ms_p999",
                              "sams_smtp_dnsbl_rcpt_stall_ms", 99.9, arch);
    series.AddGaugeProbe(registry, "dnsbl_inflight",
                         "sams_dnsbl_async_inflight");
    series.AddCounterProbe(registry, "dnsbl_deferred_rcpts",
                           "sams_smtp_dnsbl_deferred_rcpts_total", arch);
  }
  if (layout == "mfs") {
    const sams::obs::Labels mfs = {{"layout", "mfs"}};
    // Derived probe: instantaneous hit rate of the delivery fd cache.
    series.AddProbe("fd_cache_hit_rate", [&registry, mfs] {
      const auto* hits =
          registry.FindCounter("sams_mfs_fd_cache_hits_total", mfs);
      const auto* misses =
          registry.FindCounter("sams_mfs_fd_cache_misses_total", mfs);
      const double h =
          hits != nullptr ? static_cast<double>(hits->value()) : 0.0;
      const double m =
          misses != nullptr ? static_cast<double>(misses->value()) : 0.0;
      return h + m > 0 ? h / (h + m) : 0.0;
    });
  }

  // Admin HTTP endpoint: the five telemetry routes plus the SIGUSR1
  // eventfd watch.
  sams::net::AdminHttpServer admin(static_cast<std::uint16_t>(admin_port));
  admin.BindMetrics(registry);
  admin.Route("/metrics", [&registry] {
    registry.Collect();
    return sams::net::AdminResponse{
        200, "text/plain; version=0.0.4; charset=utf-8",
        sams::obs::PrometheusText(registry)};
  });
  admin.Route("/vars", [&registry] {
    registry.Collect();
    return sams::net::AdminResponse{200, "application/json",
                                    sams::obs::JsonSnapshot(registry)};
  });
  admin.Route("/healthz", [&server] {
    bool all_ok = true;
    std::string body = HealthJson(server.Health(), &all_ok);
    return sams::net::AdminResponse{all_ok ? 200 : 503, "application/json",
                                    std::move(body)};
  });
  admin.Route("/spans", [&trace] {
    return sams::net::AdminResponse{200, "text/plain; charset=utf-8",
                                    trace.DumpText()};
  });
  admin.Route("/series", [&series] {
    return sams::net::AdminResponse{200, "application/json", series.ToJson()};
  });
  if (server.reputation_engine() != nullptr) {
    admin.Route("/reputation", [&server] {
      return sams::net::AdminResponse{
          200, "application/json",
          server.reputation_engine()->SnapshotJson(
              32, sams::util::MonotonicNanos())};
    });
  }
  g_dump_eventfd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (g_dump_eventfd >= 0) {
    admin.AddWatch(g_dump_eventfd, [&registry] {
      std::uint64_t drained = 0;
      while (::read(g_dump_eventfd, &drained, sizeof(drained)) > 0) {
      }
      registry.Collect();
      const std::string json = sams::obs::JsonSnapshot(registry);
      std::fwrite(json.data(), 1, json.size(), stdout);
      std::fflush(stdout);
    });
  }
  auto admin_bound = admin.Start();
  if (!admin_bound.ok()) {
    std::fprintf(stderr, "admin endpoint: %s\n",
                 admin_bound.error().ToString().c_str());
    return 1;
  }
  series.Start();

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGUSR1, HandleDumpSignal);
  std::printf(
      "live.sams.test listening on 127.0.0.1:%u  [%s architecture, %s "
      "store, %d shard(s)%s]\n"
      "valid recipients: alice|bob|carol @example.test\n"
      "mail lands under %s — Ctrl-C drains and stops, SIGUSR1 dumps "
      "metrics\n"
      "admin endpoint on 127.0.0.1:%u — /metrics /vars /healthz /spans "
      "/series\n"
      "event log -> %s\n",
      *bound, hybrid ? "fork-after-trust" : "thread-per-connection",
      layout.c_str(), server.num_shards(),
      server.handoff_fallback() ? ", handoff fallback" : "", root.c_str(),
      *admin_bound,
      event_log_path.empty() ? "stderr" : event_log_path.c_str());
  if (!dnsbl_zones.empty()) {
    std::printf("async DNSBL pipeline on: %zu zone(s), lookups overlap the "
                "SMTP dialog\n", dnsbl_zones.size());
  }
  if (server.reputation_engine() != nullptr) {
    std::printf("pre-trust reputation gate on: greylist >= %.1f, reject >= "
                "%.1f, /reputation lists the hottest /24s\n",
                cfg.reputation.greylist_threshold,
                cfg.reputation.reject_threshold);
  }
  std::fflush(stdout);

  while (!g_stop) {
    struct timespec ts{0, 200'000'000};
    nanosleep(&ts, nullptr);
  }
  // Graceful drain: finish in-flight sessions, flush the spool, stop.
  std::printf("\ndraining (%d in flight)...\n", server.inflight());
  const int leftover = server.Drain(/*grace_ms=*/10'000);
  if (leftover > 0) {
    std::printf("grace expired with %d sessions still open\n", leftover);
  }
  series.Stop();
  admin.Stop();
  if (g_dump_eventfd >= 0) ::close(g_dump_eventfd);
  const std::string text = sams::obs::PrometheusText(registry);
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::printf(
      "\nstopped. connections %llu, mails %llu, delegations %llu, "
      "rejected RCPTs %llu, admin requests %llu\n",
      static_cast<unsigned long long>(server.stats().connections),
      static_cast<unsigned long long>(server.stats().mails_delivered),
      static_cast<unsigned long long>(server.stats().delegations),
      static_cast<unsigned long long>(server.stats().rejected_rcpts),
      static_cast<unsigned long long>(admin.requests()));
  return 0;
}
