// Quickstart: run the spam-aware mail server for real.
//
// Starts the fork-after-trust SMTP server on a loopback port with an
// MFS-backed mail store, sends three mails with the bundled client —
// a single-recipient mail, a multi-recipient spam blast, and a bounce
// probe — then reads the mailboxes back and prints what the three
// optimizations did.
//
//   $ ./quickstart
#include <cstdio>
#include <filesystem>

#include "mta/smtp_server.h"
#include "net/smtp_client.h"

using sams::mta::Architecture;
using sams::mta::RealServerConfig;
using sams::mta::RecipientDb;
using sams::mta::SmtpServer;
using sams::smtp::MailJob;
using sams::smtp::Path;

int main() {
  // 1. A mail store. MFS keeps one copy of multi-recipient mail (§6).
  const std::string root =
      std::filesystem::temp_directory_path() / "sams_quickstart";
  std::filesystem::remove_all(root);
  auto store = sams::mfs::MakeMfsStore(root, {});
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.error().ToString().c_str());
    return 1;
  }

  // 2. The local recipient database (the smtpd access map, §2).
  RecipientDb recipients;
  for (const char* user : {"alice", "bob", "carol"}) {
    recipients.AddMailbox(user, "example.test");
  }

  // 3. The server, in the paper's fork-after-trust architecture (§5).
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  SmtpServer server(cfg, std::move(recipients), **store);
  auto port = server.Start();
  if (!port.ok()) {
    std::fprintf(stderr, "start: %s\n", port.error().ToString().c_str());
    return 1;
  }
  std::printf("spam-aware SMTP server listening on 127.0.0.1:%u\n\n", *port);

  // 4. A legitimate mail to one mailbox.
  MailJob hello;
  hello.mail_from = *Path::Parse("<friend@remote.test>");
  hello.rcpts = {*Path::Parse("<alice@example.test>")};
  hello.body = "Subject: hi\n\nLunch tomorrow?\n";
  auto r1 = sams::net::SendMail("127.0.0.1", *port, hello);
  std::printf("legitimate mail to alice: %s\n",
              r1.ok() && r1->outcome == sams::smtp::ClientOutcome::kDelivered
                  ? "delivered"
                  : "FAILED");

  // 5. A multi-recipient spam blast: MFS stores the body once.
  MailJob blast;
  blast.mail_from = *Path::Parse("<offers@spam.test>");
  blast.rcpts = {*Path::Parse("<alice@example.test>"),
                 *Path::Parse("<bob@example.test>"),
                 *Path::Parse("<carol@example.test>")};
  blast.body = std::string(2'000, '$') + "\nBUY NOW\n";
  auto r2 = sams::net::SendMail("127.0.0.1", *port, blast);
  std::printf("3-recipient blast: %s (accepted %d rcpts)\n",
              r2.ok() ? "delivered" : "FAILED",
              r2.ok() ? r2->accepted_rcpts : 0);

  // 6. A random-guessing probe (§4.1): all RCPTs bounce with 550 and
  //    the session never leaves the master's event loop.
  MailJob probe;
  probe.mail_from = *Path::Parse("<harvester@spam.test>");
  probe.rcpts = {*Path::Parse("<admin@example.test>"),
                 *Path::Parse("<info@example.test>")};
  probe.body = "guess\n";
  auto r3 = sams::net::SendMail("127.0.0.1", *port, probe);
  std::printf("address-harvesting probe: %s\n\n",
              r3.ok() && r3->outcome == sams::smtp::ClientOutcome::kAllRejected
                  ? "rejected (550 User unknown)"
                  : "UNEXPECTED");

  server.Stop();

  // 7. What happened inside.
  std::printf("server stats:\n");
  std::printf("  connections        %llu\n",
              static_cast<unsigned long long>(server.stats().connections));
  std::printf("  mails delivered    %llu\n",
              static_cast<unsigned long long>(server.stats().mails_delivered));
  std::printf("  delegations        %llu  (good sessions handed to workers)\n",
              static_cast<unsigned long long>(server.stats().delegations));
  std::printf("  closed in master   %llu  (bounce died in the event loop)\n",
              static_cast<unsigned long long>(server.stats().master_closed));
  std::printf("  rejected RCPTs     %llu\n",
              static_cast<unsigned long long>(server.stats().rejected_rcpts));
  std::printf("  body bytes written %llu  (single copy for the blast)\n\n",
              static_cast<unsigned long long>((*store)->stats().bytes_written));

  for (const char* user : {"alice", "bob", "carol"}) {
    auto mails = (*store)->ReadMailbox(user);
    std::printf("mailbox %-6s: %zu mail(s)\n", user,
                mails.ok() ? mails->size() : 0);
  }
  std::filesystem::remove_all(root);
  return 0;
}
