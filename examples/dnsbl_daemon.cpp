// dnsbl_daemon — demonstrates the DNSBLv6 prefix-bitmap scheme (§7)
// against classic per-IP lookups on a synthetic botnet burst.
//
// Builds the six simulated blacklists, fires a burst of lookups the
// way a botnet campaign arrives (bots clustered in /24s), and prints
// the cache behaviour of all three schemes plus a sample of the wire
// query names (w.z.y.x.zone vs {0|1}.z.y.x.zone).
//
//   $ ./dnsbl_daemon            # demo: burst, stats, one live round trip
//   $ ./dnsbl_daemon --serve    # keep the UDP daemon up until Ctrl-C
//                               # (feed its zone:port to live_smtp_server
//                               #  --dnsbl-zones)
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "dnsbl/dnsbl_server.h"
#include "dnsbl/resolver.h"
#include "dnsbl/udp_daemon.h"
#include "trace/sinkhole.h"
#include "util/ipv4.h"

using sams::dnsbl::CacheMode;
using sams::dnsbl::Resolver;
using sams::util::Ipv4;
using sams::util::SimTime;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  const bool serve = argc > 1 && std::strcmp(argv[1], "--serve") == 0;
  // A small botnet with strong /24 clustering.
  sams::trace::SinkholeConfig cfg;
  cfg.n_connections = 20'000;
  cfg.n_ips = 3'000;
  cfg.n_prefixes = 1'200;
  const sams::trace::SinkholeModel sinkhole(cfg);
  sams::util::Rng rng(7);
  const auto listed = sinkhole.ListedIps();
  const auto lists = sams::dnsbl::MakeFigureFiveServers(listed, rng);

  std::printf("six blacklists seeded with %zu listed IPs:\n", listed.size());
  for (const auto& list : lists) {
    std::printf("  %-24s %6zu entries\n", list->zone().c_str(),
                list->db().size());
  }

  // Show the wire encodings for one bot.
  const Ipv4 sample = sinkhole.bot_ips().front();
  std::printf("\nwire query names for client %s:\n", sample.ToString().c_str());
  std::printf("  classic : %s -> 127.0.0.x or NXDOMAIN\n",
              sams::util::DnsblQueryName(sample, lists[0]->zone()).c_str());
  std::printf("  DNSBLv6 : %s -> 128-bit /25 bitmap\n\n",
              sams::util::Dnsblv6QueryName(sample, lists[0]->zone()).c_str());

  std::vector<const sams::dnsbl::DnsblServer*> servers;
  for (const auto& list : lists) servers.push_back(list.get());

  for (CacheMode mode : {CacheMode::kNoCache, CacheMode::kIpCache,
                         CacheMode::kPrefixCache}) {
    sams::util::Rng resolver_rng(11);
    Resolver resolver(mode, servers, SimTime::Hours(24), resolver_rng);
    std::uint64_t blacklisted = 0;
    double wait_ms = 0;
    for (const auto& session : sinkhole.sessions()) {
      const auto outcome = resolver.Lookup(session.client_ip, session.arrival);
      if (outcome.blacklisted) ++blacklisted;
      wait_ms += outcome.latency.millis();
    }
    std::printf(
        "%-13s: hit ratio %5.1f%%  DNS messages %7llu  mean wait %6.2f ms  "
        "blacklisted %5.1f%%\n",
        sams::dnsbl::CacheModeName(mode), 100 * resolver.stats().HitRatio(),
        static_cast<unsigned long long>(resolver.stats().dns_queries_sent),
        wait_ms / static_cast<double>(sinkhole.sessions().size()),
        100.0 * static_cast<double>(blacklisted) /
            static_cast<double>(sinkhole.sessions().size()));
  }
  std::printf(
      "\nprefix-level caching answers neighbouring bots from one bitmap\n"
      "query — exactly identifying each listed IP, never punishing clean\n"
      "neighbours (section 7.1).\n");

  // Finally: the real thing. Serve the first list's database over
  // genuine DNS datagrams and query it both ways.
  sams::dnsbl::UdpDnsblDaemon daemon(lists[0]->zone(), lists[0]->db());
  auto port = daemon.Start();
  if (port.ok()) {
    std::printf("\nlive UDP DNSBL daemon for %s on 127.0.0.1:%u\n",
                lists[0]->zone().c_str(), *port);
    sams::dnsbl::UdpDnsblClient udp(*port, lists[0]->zone());
    const Ipv4 bot = sinkhole.bot_ips().front();
    auto code = udp.QueryIp(bot);
    auto bitmap = udp.QueryPrefix(bot);
    if (code.ok() && bitmap.ok()) {
      std::printf("  A    lookup for %-15s -> %s\n", bot.ToString().c_str(),
                  *code ? ("127.0.0." + std::to_string(*code)).c_str()
                        : "NXDOMAIN");
      std::printf("  AAAA lookup for its /25      -> bitmap with %d listed "
                  "neighbour(s)\n", bitmap->PopCount());
    }
    if (serve) {
      std::signal(SIGINT, HandleSignal);
      std::signal(SIGTERM, HandleSignal);
      std::printf("  serving %s on 127.0.0.1:%u until Ctrl-C — point the "
                  "server at it with\n  live_smtp_server --dnsbl-zones "
                  "%s:%u\n",
                  lists[0]->zone().c_str(), *port, lists[0]->zone().c_str(),
                  *port);
      std::fflush(stdout);
      while (!g_stop) {
        struct timespec ts{0, 200'000'000};
        nanosleep(&ts, nullptr);
      }
    }
    daemon.Stop();
    std::printf("  daemon served %llu queries and shut down\n",
                static_cast<unsigned long long>(daemon.stats().queries));
  }
  return 0;
}
