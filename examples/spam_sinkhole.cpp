// Spam-sinkhole replay: drive the simulated testbed with a synthetic
// botnet trace and compare vanilla postfix against the spam-aware
// stack (all three optimizations), like §8 of the paper.
//
//   $ ./spam_sinkhole              # default scale
//   $ ./spam_sinkhole --quick      # smaller trace
#include <cstdio>
#include <cstring>

#include "core/server_stack.h"
#include "mta/drivers.h"
#include "trace/ecn.h"
#include "trace/sinkhole.h"

using sams::core::ServerStack;
using sams::core::StackConfig;
using sams::util::SimTime;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  // A scaled-down synthetic sinkhole (same generators as the benches).
  sams::trace::SinkholeConfig scfg;
  scfg.n_connections = quick ? 15'000 : 40'000;
  scfg.n_ips = 5'000;
  scfg.n_prefixes = 2'200;
  const sams::trace::SinkholeModel sinkhole(scfg);
  const auto listed = sinkhole.ListedIps();
  std::printf(
      "synthetic sinkhole: %zu connections, %zu bots in %zu /24 prefixes, "
      "%zu CBL-listed IPs\n\n",
      sinkhole.sessions().size(), sinkhole.bot_ips().size(),
      sinkhole.cbl_density().size(), listed.size());

  auto run = [&](bool spam_aware) {
    StackConfig cfg;
    cfg.hybrid_concurrency = spam_aware;
    cfg.mfs_store = spam_aware;
    cfg.prefix_dnsbl = spam_aware;
    ServerStack stack(cfg, listed);
    const std::size_t prewarm = sinkhole.sessions().size() / 3;
    stack.PrewarmResolver(
        std::span(sinkhole.sessions()).subspan(0, prewarm));
    const auto result = sams::mta::RunClosedLoop(
        stack.machine(), stack.server(),
        std::span(sinkhole.sessions()).subspan(prewarm), 700,
        SimTime::Seconds(20), SimTime::Seconds(quick ? 40 : 90),
        stack.resolver());
    std::printf("%-38s %7.1f mails/s  cpu %4.1f%%  ctx-switches %llu\n",
                stack.Describe().c_str(), result.goodput_mails_per_sec,
                100 * result.cpu_utilization,
                static_cast<unsigned long long>(result.context_switches));
    return result.goodput_mails_per_sec;
  };

  const double vanilla = run(false);
  const double modified = run(true);
  std::printf("\nspam-aware stack improves throughput by %.1f%% "
              "(paper, with the ECN bounce mix: +40%%)\n",
              100.0 * (modified / vanilla - 1.0));
  return 0;
}
