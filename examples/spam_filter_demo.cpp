// spam_filter_demo — train the Bayes classifier on a synthetic corpus,
// then run the real fork-after-trust server with the content filter
// wired into its post-DATA hook (§5.2's "body tests") and show one
// mail delivered, one tagged-but-borderline, one rejected with 554.
//
//   $ ./spam_filter_demo
#include <cstdio>
#include <filesystem>
#include <memory>

#include "filter/corpus.h"
#include "filter/spam_filter.h"
#include "mta/smtp_server.h"
#include "net/smtp_client.h"

int main() {
  // 1. Train.
  sams::util::Rng rng(2026);
  auto filter = std::make_shared<sams::filter::SpamFilter>();
  for (int i = 0; i < 400; ++i) {
    filter->bayes().Train(sams::filter::MakeSpamBody(rng), true);
    filter->bayes().Train(sams::filter::MakeHamBody(rng), false);
  }
  std::printf("Bayes model: %zu tokens from %llu spam + %llu ham documents\n",
              filter->bayes().vocabulary_size(),
              static_cast<unsigned long long>(filter->bayes().spam_documents()),
              static_cast<unsigned long long>(filter->bayes().ham_documents()));

  // 2. Serve, with the filter as the post-DATA content check.
  const std::string root =
      std::filesystem::temp_directory_path() / "sams_filter_demo";
  std::filesystem::remove_all(root);
  auto store = sams::mfs::MakeMfsStore(root, {});
  if (!store.ok()) return 1;
  sams::mta::RecipientDb recipients;
  recipients.AddMailbox("alice", "example.test");
  sams::mta::RealServerConfig cfg;
  cfg.architecture = sams::mta::Architecture::kForkAfterTrust;
  cfg.content_check = [filter](const sams::smtp::Envelope& envelope) {
    const auto verdict = filter->Classify(envelope);
    std::printf("  [filter] score %5.2f  %-8s  hits:", verdict.score,
                verdict.reject ? "REJECT" : verdict.spam ? "tag" : "clean");
    for (const auto& hit : verdict.hits) std::printf(" %s", hit.c_str());
    std::printf("\n");
    return !verdict.reject;
  };
  sams::mta::SmtpServer server(cfg, std::move(recipients), **store);
  auto port = server.Start();
  if (!port.ok()) return 1;
  std::printf("\nfiltering SMTP server on 127.0.0.1:%u\n\n", *port);

  auto send = [&](const char* label, std::string body) {
    sams::smtp::MailJob job;
    job.mail_from = *sams::smtp::Path::Parse("<peer@remote.test>");
    job.rcpts = {*sams::smtp::Path::Parse("<alice@example.test>")};
    job.body = std::move(body);
    auto result = sams::net::SendMail("127.0.0.1", *port, job);
    std::printf("%-22s -> %s\n\n", label,
                !result.ok() ? "transport error"
                : result->outcome == sams::smtp::ClientOutcome::kDelivered
                    ? "250 accepted"
                    : "554 rejected");
  };

  send("legitimate mail", sams::filter::MakeHamBody(rng));
  send("statistical spam", sams::filter::MakeSpamBody(rng));
  send("blatant spam",
       "Subject: FREE MONEY WINNER\n\nviagra no prescription buy now click "
       "here lottery nigerian prince act now 100% free\n"
       "http://a http://b http://c\n");

  server.Stop();
  std::printf("delivered %llu, content-rejected %llu\n",
              static_cast<unsigned long long>(server.stats().mails_delivered),
              static_cast<unsigned long long>(server.stats().content_rejects));
  std::filesystem::remove_all(root);
  return 0;
}
