// Micro-benchmarks of the discrete-event core: raw event throughput
// and scheduler/disk hot paths, which bound the figure benches' wall
// time.
#include <benchmark/benchmark.h>

#include "sim/cpu.h"
#include "sim/disk.h"
#include "sim/simulator.h"

namespace {

using sams::sim::Cpu;
using sams::sim::CpuConfig;
using sams::sim::Disk;
using sams::sim::DiskConfig;
using sams::sim::Simulator;
using sams::util::SimTime;

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1'000; ++i) {
      sim.At(SimTime::Micros(i * 7 % 997), [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_EventQueueChurn)->Unit(benchmark::kMicrosecond);

void BM_CpuRoundRobin(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Cpu cpu(sim, CpuConfig{});
    int done = 0;
    for (int pid = 0; pid < 50; ++pid) {
      cpu.Submit(pid, SimTime::Millis(3), [&done] { ++done; });
    }
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  // 50 procs x 3 quanta each = 150 scheduling decisions.
  state.SetItemsProcessed(state.iterations() * 150);
}
BENCHMARK(BM_CpuRoundRobin)->Unit(benchmark::kMicrosecond);

void BM_DiskGroupCommit(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Disk disk(sim, DiskConfig{});
    int done = 0;
    for (int i = 0; i < 200; ++i) {
      disk.BufferWrite(4'096);
      disk.Fsync([&done] { ++done; });
    }
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_DiskGroupCommit)->Unit(benchmark::kMicrosecond);

}  // namespace
