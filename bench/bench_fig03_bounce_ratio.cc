// Figure 3: daily bounce ratio and unfinished-SMTP ratio on the ECN
// mail server across 2007.
//
// Paper: bounces run 20-25% of delivered mails with a slight increase
// over the year; unfinished SMTP transactions fluctuate between 5% and
// 15%.
#include <cstdio>

#include "bench/bench_util.h"
#include "trace/ecn.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const auto args = sams::bench::BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Figure 3 - daily bounce & unfinished-SMTP ratios (ECN, 2007)",
      "ICDCS'09 section 4.1, Figure 3",
      "bounces 20-25% w/ slight upward trend; unfinished 5-15%");

  sams::trace::EcnConfig cfg;
  cfg.seed = args.seed == 42 ? cfg.seed : args.seed;
  const sams::trace::EcnBounceModel model(cfg);

  // Print a monthly-resolution series (the figure's visual grain).
  sams::util::TextTable table(
      {"day", "bounce_ratio", "unfinished_ratio"});
  const int stride = args.quick ? 60 : 15;
  for (std::size_t i = 0; i < model.days().size(); i += stride) {
    const auto& day = model.days()[i];
    table.AddRow({std::to_string(day.day_index),
                  sams::util::TextTable::Num(day.bounce_ratio, 3),
                  sams::util::TextTable::Num(day.unfinished_ratio, 3)});
  }
  sams::bench::PrintTable(table);

  // Aggregates for the reproduction record.
  double b_min = 1, b_max = 0, u_min = 1, u_max = 0;
  for (const auto& day : model.days()) {
    b_min = std::min(b_min, day.bounce_ratio);
    b_max = std::max(b_max, day.bounce_ratio);
    u_min = std::min(u_min, day.unfinished_ratio);
    u_max = std::max(u_max, day.unfinished_ratio);
  }
  const std::size_t q = model.days().size() / 4;
  double early = 0, late = 0;
  for (std::size_t i = 0; i < q; ++i) early += model.days()[i].bounce_ratio;
  for (std::size_t i = model.days().size() - q; i < model.days().size(); ++i) {
    late += model.days()[i].bounce_ratio;
  }
  std::printf(
      "\n  bounce range: %.1f%%..%.1f%% mean %.1f%% (paper: ~20-25%%)\n"
      "  unfinished range: %.1f%%..%.1f%% mean %.1f%% (paper: ~5-15%%)\n"
      "  yearly trend: first-quarter %.1f%% -> last-quarter %.1f%% "
      "(paper: slight increase)\n"
      "  combined rogue-connection share: %.1f%% "
      "(paper: 'between 25 and 45%%')\n\n",
      100 * b_min, 100 * b_max, 100 * model.MeanBounceRatio(), 100 * u_min,
      100 * u_max, 100 * model.MeanUnfinishedRatio(),
      100 * early / static_cast<double>(q), 100 * late / static_cast<double>(q),
      100 * (model.MeanBounceRatio() + model.MeanUnfinishedRatio()));
  return 0;
}
