// Delivery fast-path bench: measured deliveries/sec and fsyncs/mail on
// the REAL mailbox stores (host file system) across three durability
// modes:
//
//   none            no durability barrier (upper bound / baseline)
//   fsync-each-mail fsync(2) inline per delivery (what Postfix does)
//   group-commit    deliveries block on a shared GroupCommitter flush
//                   round that fsyncs each dirty file ONCE per window
//
// The claims under test (DESIGN.md §8):
//   - group commit amortizes the durability barrier: at concurrency 16
//     fsyncs/mail drops below 1 (per-mail fsync pays 2),
//   - that translates to >= 2x deliveries/sec versus fsync-each-mail
//     on the MFS layout, at the same durable-before-ack guarantee,
//   - single-stream (concurrency 1) group commit degenerates to the
//     per-mail cost — the win is a concurrency phenomenon.
//
// --smoke runs only the MFS fsync-vs-group comparison at concurrency 8
// and exits nonzero unless group-commit fsyncs/mail < 1 (CI gate).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mfs/store.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using sams::mfs::GroupCommitter;
using sams::mfs::MailId;
using sams::mfs::MailStore;
using sams::mfs::StoreOptions;
using sams::obs::Labels;
using sams::util::TextTable;

// bench_util's BenchArgs rejects flags it does not know, so the bench
// parses its own (--smoke on top of the standard --quick/--seed=N).
struct Args {
  bool quick = false;
  bool smoke = false;
  std::uint64_t seed = 42;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

using Factory = sams::util::Result<std::unique_ptr<MailStore>> (*)(
    const std::string&, StoreOptions);

struct Backend {
  const char* name;
  Factory make;
};

struct Mode {
  const char* name;
  bool fsync_each_mail;
  bool group_commit;
};

constexpr Backend kBackends[] = {
    {"mfs", &sams::mfs::MakeMfsStore},
    {"maildir", &sams::mfs::MakeMaildirStore},
    {"mbox", &sams::mfs::MakeMboxStore},
};

constexpr Mode kModes[] = {
    {"none", false, false},
    {"fsync-each-mail", true, false},
    {"group-commit", false, true},
};

struct RunResult {
  int mails = 0;
  double seconds = 0;
  double deliveries_per_sec = 0;
  double fsyncs_per_mail = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t batch_max = 0;   // group-commit mode only
  std::uint64_t flushes = 0;     // group-commit mode only
  bool failed = false;
};

// Deliveries target a small shared mailbox set: fsync sharing only
// happens when concurrent deliveries dirty the SAME files, which is
// the hot-mailbox reality the paper's shared-spool design targets.
constexpr int kSharedMailboxes = 2;
constexpr std::size_t kBodyBytes = 4096;

// Copies the committer's batch-size histogram into `summary` under the
// run's labels. Bucketing is `v <= bound`, so replaying each finite
// bucket's count at its exact bound (and the overflow count past the
// last bound) reproduces the bucket counts verbatim.
void MirrorBatchHistogram(const sams::obs::Histogram& src,
                          sams::obs::Registry& summary, const Labels& labels) {
  auto& dst = summary.GetHistogram(
      "sams_mfs_commit_batch_size",
      "deliveries made durable per group-commit flush round",
      sams::obs::HistogramSpec{1.0, 2.0, 10}, labels);
  const std::vector<double>& bounds = src.bounds();
  const std::vector<std::uint64_t> cum = src.CumulativeCounts();
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < cum.size(); ++i) {
    const std::uint64_t in_bucket = cum[i] - below;
    below = cum[i];
    const double v =
        i < bounds.size() ? bounds[i] : bounds.back() * 2.0;  // +Inf bucket
    for (std::uint64_t n = 0; n < in_bucket; ++n) dst.Observe(v);
  }
}

RunResult RunOne(const Backend& backend, const Mode& mode, int concurrency,
                 int mails_per_thread, std::uint64_t seed,
                 sams::obs::Registry* summary, const Labels& labels) {
  const std::string root = std::filesystem::temp_directory_path() /
                           ("sams_bench_gc_" + std::string(backend.name) +
                            "_" + std::string(mode.name) + "_" +
                            std::to_string(concurrency));
  std::filesystem::remove_all(root);

  StoreOptions opts;
  opts.fsync_each_mail = mode.fsync_each_mail;
  opts.group_commit = mode.group_commit;
  opts.commit.window = std::chrono::microseconds(2000);
  opts.commit.max_batch = 64;

  RunResult result;
  auto store_or = backend.make(root, opts);
  if (!store_or.ok()) {
    std::fprintf(stderr, "  %s/%s: store open failed: %s\n", backend.name,
                 mode.name, store_or.error().ToString().c_str());
    result.failed = true;
    return result;
  }
  std::unique_ptr<MailStore> store = std::move(store_or).value();
  // Bound to a registry that outlives the store only within this scope;
  // the committer observes its batch histogram at flush time, so bind
  // before the workload runs.
  sams::obs::Registry local;
  store->BindMetrics(local);

  const std::string body(kBodyBytes, 'x');
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(concurrency));
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < concurrency; ++t) {
    threads.emplace_back([&, t] {
      sams::util::Rng rng(seed + static_cast<std::uint64_t>(t) + 1);
      std::vector<std::string> rcpt(1);
      for (int j = 0; j < mails_per_thread; ++j) {
        rcpt[0] = "inbox" +
                  std::to_string((t * mails_per_thread + j) % kSharedMailboxes);
        const MailId id = MailId::Generate(rng);
        if (!store->Deliver(id, body, rcpt).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  result.mails = concurrency * mails_per_thread;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.failed = failures.load() != 0;
  if (result.failed) {
    std::fprintf(stderr, "  %s/%s: %d deliveries failed\n", backend.name,
                 mode.name, failures.load());
    return result;
  }
  result.deliveries_per_sec =
      result.seconds > 0 ? static_cast<double>(result.mails) / result.seconds
                         : 0.0;
  result.fsyncs = store->stats().fsyncs;
  result.fsyncs_per_mail =
      static_cast<double>(result.fsyncs) / static_cast<double>(result.mails);
  if (store->committer() != nullptr) {
    const GroupCommitter::Stats cs = store->committer()->stats();
    result.batch_max = cs.batch_max;
    result.flushes = cs.flushes;
    if (summary != nullptr) {
      local.Collect();
      const Labels layout = {{"layout", std::string(backend.name)}};
      const sams::obs::Histogram* hist =
          local.FindHistogram("sams_mfs_commit_batch_size", layout);
      if (hist != nullptr) MirrorBatchHistogram(*hist, *summary, labels);
    }
  }
  store.reset();  // joins the flush thread before the registry dies
  std::filesystem::remove_all(root);
  return result;
}

int RunSmoke(const Args& args) {
  constexpr int kConcurrency = 8;
  constexpr int kMailsPerThread = 8;
  std::printf("  smoke: mfs backend, concurrency %d, %d mails\n\n",
              kConcurrency, kConcurrency * kMailsPerThread);
  TextTable table({"mode", "deliveries/s", "fsyncs/mail", "batch max"});
  double group_fsyncs_per_mail = -1.0;
  bool failed = false;
  for (const Mode& mode : kModes) {
    if (!mode.fsync_each_mail && !mode.group_commit) continue;  // skip none
    const RunResult r = RunOne(kBackends[0], mode, kConcurrency,
                               kMailsPerThread, args.seed, nullptr, {});
    failed = failed || r.failed;
    if (mode.group_commit) group_fsyncs_per_mail = r.fsyncs_per_mail;
    table.AddRow({mode.name, TextTable::Num(r.deliveries_per_sec, 0),
                  TextTable::Num(r.fsyncs_per_mail, 3),
                  std::to_string(r.batch_max)});
  }
  sams::bench::PrintTable(table);
  const bool ok = !failed && group_fsyncs_per_mail >= 0.0 &&
                  group_fsyncs_per_mail < 1.0;
  std::printf("\n  group-commit fsyncs/mail < 1 at concurrency %d: %s\n\n",
              kConcurrency, ok ? "yes" : "NO - REGRESSION");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  sams::bench::PrintHeader(
      "MFS delivery fast path - group commit vs per-mail fsync (real I/O)",
      "durability follow-up to ICDCS'09 section 6.3",
      "group commit amortizes fsync: < 1 fsync/mail and >= 2x "
      "deliveries/sec at concurrency 16 on the MFS layout");

  if (args.smoke) return RunSmoke(args);

  const int total_mails = args.quick ? 48 : 96;
  const int concurrencies[] = {1, 16};

  sams::obs::Registry summary;
  TextTable table({"backend", "mode", "conc", "mails", "deliveries/s",
                   "fsyncs/mail", "batch max", "flushes"});
  double mfs16_fsync_dps = 0.0;
  double mfs16_group_dps = 0.0;
  double mfs16_group_fpm = -1.0;
  bool any_failed = false;
  for (const Backend& backend : kBackends) {
    for (const Mode& mode : kModes) {
      for (const int conc : concurrencies) {
        const int per_thread = total_mails / conc;
        const Labels labels = {{"backend", backend.name},
                               {"mode", mode.name},
                               {"concurrency", std::to_string(conc)}};
        const RunResult r = RunOne(backend, mode, conc, per_thread, args.seed,
                                   &summary, labels);
        any_failed = any_failed || r.failed;
        table.AddRow({backend.name, mode.name, std::to_string(conc),
                      std::to_string(r.mails),
                      TextTable::Num(r.deliveries_per_sec, 0),
                      TextTable::Num(r.fsyncs_per_mail, 3),
                      mode.group_commit ? std::to_string(r.batch_max) : "-",
                      mode.group_commit ? std::to_string(r.flushes) : "-"});
        summary
            .GetGauge("bench_mfs_group_commit_deliveries_per_sec",
                      "measured delivery throughput on the host fs", labels)
            .Set(r.deliveries_per_sec);
        summary
            .GetGauge("bench_mfs_group_commit_fsyncs_per_mail",
                      "fsync(2) calls divided by mails delivered", labels)
            .Set(r.fsyncs_per_mail);
        if (std::strcmp(backend.name, "mfs") == 0 && conc == 16) {
          if (mode.fsync_each_mail) mfs16_fsync_dps = r.deliveries_per_sec;
          if (mode.group_commit) {
            mfs16_group_dps = r.deliveries_per_sec;
            mfs16_group_fpm = r.fsyncs_per_mail;
          }
        }
      }
    }
  }
  sams::bench::PrintTable(table);

  const double speedup =
      mfs16_fsync_dps > 0 ? mfs16_group_dps / mfs16_fsync_dps : 0.0;
  summary
      .GetGauge("bench_mfs_group_commit_speedup_vs_fsync",
                "group-commit over fsync-each-mail deliveries/sec, mfs "
                "layout at concurrency 16")
      .Set(speedup);
  const bool ok = !any_failed && speedup >= 2.0 && mfs16_group_fpm >= 0.0 &&
                  mfs16_group_fpm < 1.0;
  std::printf(
      "\n  mfs @ concurrency 16: group commit %.1fx fsync-each-mail "
      "(%.3f fsyncs/mail): %s\n",
      speedup, mfs16_group_fpm, ok ? "pass" : "NO - REGRESSION");

  const char* json_path = "BENCH_mfs_group_commit.json";
  const sams::util::Error err =
      sams::obs::WriteJsonSnapshot(summary, json_path);
  if (err.ok()) {
    std::printf("  summary written to %s\n\n", json_path);
  } else {
    std::fprintf(stderr, "  summary write failed: %s\n\n",
                 err.ToString().c_str());
  }
  return ok ? 0 : 1;
}
