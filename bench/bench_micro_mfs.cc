// Micro-benchmarks of the REAL mailbox stores on the host file system
// (google-benchmark). These complement the Figure 10/11 cost-model
// sweeps with measured I/O on genuine code paths: they demonstrate the
// library's actual single-copy behaviour (bytes written scale with
// recipients for mbox/maildir but not for MFS).
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "mfs/store.h"
#include "util/rng.h"

namespace {

using sams::mfs::MailId;
using sams::mfs::MailStore;
using sams::mfs::StoreOptions;

std::string FreshRoot(const std::string& tag) {
  const std::string root = std::filesystem::temp_directory_path() /
                           ("sams_micro_" + tag);
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  return root;
}

std::vector<std::string> Mailboxes(int n) {
  std::vector<std::string> boxes;
  for (int i = 0; i < n; ++i) boxes.push_back("user" + std::to_string(i));
  return boxes;
}

using Factory = sams::util::Result<std::unique_ptr<MailStore>> (*)(
    const std::string&, StoreOptions);

template <Factory factory>
void BM_StoreDeliver(benchmark::State& state) {
  const int rcpts = static_cast<int>(state.range(0));
  const std::string root = FreshRoot(std::to_string(
      reinterpret_cast<std::uintptr_t>(&state)));
  auto store = factory(root, StoreOptions{});
  if (!store.ok()) {
    state.SkipWithError(store.error().ToString().c_str());
    return;
  }
  const auto boxes = Mailboxes(rcpts);
  const std::string body(8'192, 'S');
  sams::util::Rng rng(1);
  for (auto _ : state) {
    const auto err = (*store)->Deliver(MailId::Generate(rng), body, boxes);
    if (!err.ok()) {
      state.SkipWithError(err.ToString().c_str());
      return;
    }
  }
  state.counters["bytes/mail"] = static_cast<double>(
      (*store)->stats().bytes_written /
      std::max<std::uint64_t>(1, (*store)->stats().mails_delivered));
  state.counters["files/mail"] = static_cast<double>(
      (*store)->stats().files_created /
      std::max<std::uint64_t>(1, (*store)->stats().mails_delivered));
  state.SetItemsProcessed(state.iterations() * rcpts);
  std::filesystem::remove_all(root);
}

void StoreArgs(benchmark::internal::Benchmark* bench) {
  bench->Arg(1)->Arg(7)->Arg(15)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_StoreDeliver<&sams::mfs::MakeMboxStore>)
    ->Name("mbox_deliver")->Apply(StoreArgs);
BENCHMARK(BM_StoreDeliver<&sams::mfs::MakeMaildirStore>)
    ->Name("maildir_deliver")->Apply(StoreArgs);
BENCHMARK(BM_StoreDeliver<&sams::mfs::MakeHardlinkMaildirStore>)
    ->Name("hardlink_deliver")->Apply(StoreArgs);
BENCHMARK(BM_StoreDeliver<&sams::mfs::MakeMfsStore>)
    ->Name("mfs_deliver")->Apply(StoreArgs);

void BM_MfsRead(benchmark::State& state) {
  const std::string root = FreshRoot("mfsread");
  auto store = sams::mfs::MakeMfsStore(root, StoreOptions{});
  if (!store.ok()) {
    state.SkipWithError(store.error().ToString().c_str());
    return;
  }
  const auto boxes = Mailboxes(5);
  const std::string body(8'192, 'R');
  sams::util::Rng rng(2);
  for (int i = 0; i < 64; ++i) {
    (void)(*store)->Deliver(MailId::Generate(rng), body, boxes);
  }
  for (auto _ : state) {
    auto mails = (*store)->ReadMailbox("user0");
    if (!mails.ok() || mails->size() != 64) {
      state.SkipWithError("read failed");
      return;
    }
    benchmark::DoNotOptimize(mails);
  }
  state.SetItemsProcessed(state.iterations() * 64);
  std::filesystem::remove_all(root);
}
BENCHMARK(BM_MfsRead)->Unit(benchmark::kMicrosecond);

}  // namespace
