// Shared harness for Figures 10 and 11: mails written per second for
// the four mailbox store layouts as the number of recipients per
// connection grows, on a given base-file-system cost model.
//
// Workload (§6.3): zero bounce ratio; repeated sequences of mails
// destined to 15 distinct mailboxes; each 15-mail sequence shares one
// size drawn from the Univ distribution; a sweep point with k
// "rcpt to" fields per connection needs ceil(15/k) connections per
// sequence. Client program 1 (closed loop) drives the vanilla server.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fskit/fs_model.h"
#include "mta/drivers.h"
#include "mta/sim_server.h"
#include "trace/sinkhole.h"
#include "trace/synthetic.h"
#include "util/stats.h"

namespace sams::bench {

inline double MeasureStoreThroughput(const fskit::FsModel& model,
                                     const std::string& layout,
                                     int rcpts_per_connection,
                                     const BenchArgs& args) {
  trace::RecipientSweepConfig tcfg;
  tcfg.n_mails = args.quick ? 4'000 : 12'000;
  tcfg.rcpts_per_connection = rcpts_per_connection;
  tcfg.sequence_len = 15;
  tcfg.seed = args.seed;
  const auto sessions = trace::MakeRecipientSweepTrace(tcfg);

  sim::Machine machine;
  fskit::SimFs fs(machine.disk(), model);
  auto store = mfs::MakeSimStore(layout, fs);
  mta::SimServerConfig cfg;
  cfg.process_limit = 500;
  mta::SimMailServer server(machine, cfg, *store);

  const util::SimTime warmup = util::SimTime::Seconds(args.quick ? 15 : 30);
  const util::SimTime window = util::SimTime::Seconds(args.quick ? 40 : 90);
  const auto result = mta::RunClosedLoop(machine, server, sessions,
                                         /*concurrency=*/700, warmup, window);
  return result.mailbox_writes_per_sec;
}

// Prints the full sweep; returns MFS and mbox throughput at 15 rcpts.
struct StoreSweepHighlights {
  double mfs_at_15 = 0;
  double mbox_at_15 = 0;
  double maildir_at_15 = 0;
  double hardlink_at_15 = 0;
  double mbox_at_1 = 0;
};

inline StoreSweepHighlights RunStoreSweep(const fskit::FsModel& model,
                                          const BenchArgs& args) {
  const std::vector<int> rcpts = args.quick
                                     ? std::vector<int>{1, 5, 15}
                                     : std::vector<int>{1, 2, 4, 6, 8, 10, 12,
                                                        15};
  const std::vector<std::string> layouts = {"mfs", "mbox", "maildir",
                                            "hardlink"};
  util::TextTable table({"rcpts/conn", "MFS", "Postfix(mbox)", "maildir",
                         "hard-link"});
  StoreSweepHighlights highlights;
  for (int k : rcpts) {
    std::vector<std::string> row = {std::to_string(k)};
    for (const std::string& layout : layouts) {
      const double writes = MeasureStoreThroughput(model, layout, k, args);
      row.push_back(util::TextTable::Num(writes, 0));
      if (k == 15) {
        if (layout == "mfs") highlights.mfs_at_15 = writes;
        if (layout == "mbox") highlights.mbox_at_15 = writes;
        if (layout == "maildir") highlights.maildir_at_15 = writes;
        if (layout == "hardlink") highlights.hardlink_at_15 = writes;
      }
      if (k == 1 && layout == "mbox") highlights.mbox_at_1 = writes;
    }
    table.AddRow(std::move(row));
  }
  PrintTable(table);
  std::printf("  (mails written to mailboxes per second)\n");
  return highlights;
}

// §6.3's final paragraph: MFS vs mbox under the sinkhole trace
// (mean ~7 recipients per connection).
inline void RunSinkholeComparison(const fskit::FsModel& model,
                                  const BenchArgs& args) {
  trace::SinkholeConfig scfg;
  scfg.n_connections = args.quick ? 8'000 : 20'000;
  scfg.n_ips = 4'000;
  scfg.n_prefixes = 1'800;
  scfg.seed = args.seed;
  const trace::SinkholeModel sinkhole(scfg);

  double results[2];
  const char* layouts[2] = {"mbox", "mfs"};
  for (int i = 0; i < 2; ++i) {
    sim::Machine machine;
    fskit::SimFs fs(machine.disk(), model);
    auto store = mfs::MakeSimStore(layouts[i], fs);
    mta::SimServerConfig cfg;
    cfg.process_limit = 500;
    mta::SimMailServer server(machine, cfg, *store);
    const auto r = mta::RunClosedLoop(
        machine, server, sinkhole.sessions(), 700,
        util::SimTime::Seconds(args.quick ? 15 : 30),
        util::SimTime::Seconds(args.quick ? 40 : 90));
    results[i] = r.mailbox_writes_per_sec;
  }
  std::printf(
      "\n  sinkhole-trace replay (mean ~7 rcpts/conn): MFS %.0f vs vanilla "
      "%.0f mailbox-writes/s -> +%.1f%% (paper: +20%%)\n",
      results[1], results[0], 100.0 * (results[1] / results[0] - 1.0));
}

}  // namespace sams::bench
