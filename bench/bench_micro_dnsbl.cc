// Micro-benchmarks of the DNSBL layer: database lookups, bitmap
// assembly, cache operations, and full resolver rounds.
#include <benchmark/benchmark.h>

#include <memory>

#include "dnsbl/blacklist_db.h"
#include "dnsbl/cache.h"
#include "dnsbl/resolver.h"
#include "util/rng.h"

namespace {

using namespace sams::dnsbl;  // NOLINT: bench-local convenience
using sams::util::Ipv4;
using sams::util::Prefix25;
using sams::util::SimTime;

std::shared_ptr<BlacklistDb> MakeDb(int n, sams::util::Rng& rng) {
  auto db = std::make_shared<BlacklistDb>();
  for (int i = 0; i < n; ++i) {
    db->Add(Ipv4(static_cast<std::uint32_t>(rng.NextU64())));
  }
  return db;
}

void BM_DbLookup(benchmark::State& state) {
  sams::util::Rng rng(1);
  auto db = MakeDb(20'000, rng);
  std::uint32_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Lookup(Ipv4(probe += 2654435761u)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbLookup);

void BM_DbPrefixBitmap(benchmark::State& state) {
  sams::util::Rng rng(2);
  auto db = MakeDb(20'000, rng);
  std::uint32_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->LookupPrefix(Prefix25(Ipv4(probe += 2654435761u))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbPrefixBitmap);

void BM_IpCacheHit(benchmark::State& state) {
  IpCache cache(SimTime::Hours(24));
  const Ipv4 ip(198, 51, 100, 7);
  cache.Insert(ip, IpVerdict{true}, SimTime::Seconds(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(ip, SimTime::Seconds(1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IpCacheHit);

void BM_PrefixCacheHit(benchmark::State& state) {
  PrefixCache cache(SimTime::Hours(24));
  const Ipv4 ip(198, 51, 100, 7);
  PrefixBitmap bitmap;
  bitmap.Set(7);
  cache.Insert(Prefix25(ip), bitmap, SimTime::Seconds(0));
  for (auto _ : state) {
    const PrefixBitmap* hit = cache.Lookup(Prefix25(ip), SimTime::Seconds(1));
    benchmark::DoNotOptimize(hit->TestIp(ip));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefixCacheHit);

void BM_ResolverMissRound(benchmark::State& state) {
  sams::util::Rng db_rng(3);
  auto db = MakeDb(20'000, db_rng);
  LatencyProfile quick{2.0, 0.3, 0.1, 100.0, 400.0};
  std::vector<std::unique_ptr<DnsblServer>> lists;
  std::vector<const DnsblServer*> servers;
  for (int i = 0; i < 6; ++i) {
    lists.push_back(std::make_unique<DnsblServer>(
        "list" + std::to_string(i) + ".test", db, quick));
    servers.push_back(lists.back().get());
  }
  sams::util::Rng rng(4);
  Resolver resolver(CacheMode::kPrefixCache, servers, SimTime::Hours(24), rng);
  std::uint32_t probe = 0;
  std::int64_t t = 0;
  for (auto _ : state) {
    // Distinct /25s every time: always a miss (worst case).
    benchmark::DoNotOptimize(resolver.Lookup(
        Ipv4((probe += 128) * 2654435761u), SimTime::Seconds(++t)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResolverMissRound);

}  // namespace
