// Figure 15 + §7.2 cache statistics: replay the sinkhole trace's
// 101,692 connections through the DNSBL resolver under three schemes
// and report the lookup-time CDF and cache effectiveness.
//
// Paper: prefix-based lookups raise the cache hit ratio from 73.8% to
// 83.9%; the fraction of connections issuing DNS queries drops from
// 26.22% to 16.11%, i.e. ~39% fewer DNSBL query rounds.
#include <cstdio>

#include "bench/bench_util.h"
#include "dnsbl/dnsbl_server.h"
#include "dnsbl/resolver.h"
#include "trace/sinkhole.h"
#include "util/stats.h"

namespace {

using sams::dnsbl::CacheMode;

struct Replay {
  sams::util::Sampler latency_ms;
  double hit_ratio = 0;
  double query_round_ratio = 0;
  std::uint64_t dns_queries = 0;
};

Replay Run(CacheMode mode, const sams::trace::SinkholeModel& sinkhole,
           const std::vector<std::unique_ptr<sams::dnsbl::DnsblServer>>& lists,
           std::uint64_t seed) {
  sams::util::Rng rng(seed);
  std::vector<const sams::dnsbl::DnsblServer*> servers;
  for (const auto& list : lists) servers.push_back(list.get());
  sams::dnsbl::Resolver resolver(mode, servers,
                                 sams::util::SimTime::Hours(24), rng);
  Replay replay;
  for (const auto& session : sinkhole.sessions()) {
    const auto outcome = resolver.Lookup(session.client_ip, session.arrival);
    replay.latency_ms.Add(outcome.latency.millis());
  }
  replay.hit_ratio = resolver.stats().HitRatio();
  replay.query_round_ratio = resolver.stats().QueryRoundRatio();
  replay.dns_queries = resolver.stats().dns_queries_sent;
  return replay;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = sams::bench::BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Figure 15 - DNSBL lookup-time CDF under prefix/IP/no caching",
      "ICDCS'09 section 7.2, Figure 15",
      "hit ratio 73.8% -> 83.9%; query rounds 26.22% -> 16.11% (-39%)");

  sams::trace::SinkholeConfig cfg;
  if (args.quick) {
    cfg.n_connections = 20'000;
    cfg.n_ips = 4'000;
    cfg.n_prefixes = 1'800;
  }
  const sams::trace::SinkholeModel sinkhole(cfg);
  sams::util::Rng server_rng(args.seed);
  const auto listed = sinkhole.ListedIps();
  const auto lists = sams::dnsbl::MakeFigureFiveServers(listed, server_rng);

  const Replay none = Run(CacheMode::kNoCache, sinkhole, lists, args.seed);
  const Replay ip = Run(CacheMode::kIpCache, sinkhole, lists, args.seed);
  const Replay prefix = Run(CacheMode::kPrefixCache, sinkhole, lists, args.seed);

  sams::util::TextTable cdf({"t (ms)", "no caching", "IP-level", "prefix-level"});
  for (int t : {0, 25, 50, 100, 150, 200, 250}) {
    cdf.AddRow({std::to_string(t),
                sams::util::TextTable::Pct(none.latency_ms.CdfAt(t)),
                sams::util::TextTable::Pct(ip.latency_ms.CdfAt(t)),
                sams::util::TextTable::Pct(prefix.latency_ms.CdfAt(t))});
  }
  sams::bench::PrintTable(cdf);

  sams::util::TextTable stats({"scheme", "hit ratio", "conns issuing DNS",
                               "DNS messages"});
  stats.AddRow({"no caching", "-",
                sams::util::TextTable::Pct(none.query_round_ratio),
                std::to_string(none.dns_queries)});
  stats.AddRow({"IP-level", sams::util::TextTable::Pct(ip.hit_ratio),
                sams::util::TextTable::Pct(ip.query_round_ratio),
                std::to_string(ip.dns_queries)});
  stats.AddRow({"prefix-level", sams::util::TextTable::Pct(prefix.hit_ratio),
                sams::util::TextTable::Pct(prefix.query_round_ratio),
                std::to_string(prefix.dns_queries)});
  std::printf("\n");
  sams::bench::PrintTable(stats);

  std::printf(
      "\n  hit ratio: IP %.1f%% -> prefix %.1f%% (paper: 73.8%% -> 83.9%%)\n"
      "  query-round ratio: %.2f%% -> %.2f%% (paper: 26.22%% -> 16.11%%)\n"
      "  DNS query reduction: %.1f%% (paper: ~39%%)\n\n",
      100 * ip.hit_ratio, 100 * prefix.hit_ratio, 100 * ip.query_round_ratio,
      100 * prefix.query_round_ratio,
      100.0 * (1.0 - static_cast<double>(prefix.dns_queries) /
                         static_cast<double>(ip.dns_queries)));
  return 0;
}
