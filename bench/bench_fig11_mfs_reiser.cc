// Figure 11: the same store sweep on ReiserFS.
//
// Paper claims: maildir still performs worst, but hard-link improves
// dramatically relative to Ext3; MFS still outperforms hard-link,
// vanilla mbox and maildir by about 29.5%, 31% and 212% respectively
// at 15 recipients.
#include <cstdio>

#include "bench/mfs_throughput_bench.h"

int main(int argc, char** argv) {
  const auto args = sams::bench::BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Figure 11 - store throughput vs recipients per connection (Reiser)",
      "ICDCS'09 section 6.3, Figure 11",
      "hard-link recovers on Reiser; MFS +29.5%/+31%/+212% over "
      "hard-link/mbox/maildir at 15 rcpts");

  sams::fskit::ReiserModel reiser;
  const auto h = sams::bench::RunStoreSweep(reiser, args);
  std::printf(
      "\n  MFS vs hard-link at 15 rcpts: +%.1f%% (paper: +29.5%%)\n"
      "  MFS vs mbox at 15 rcpts:      +%.1f%% (paper: +31%%)\n"
      "  MFS vs maildir at 15 rcpts:   +%.1f%% (paper: +212%%)\n\n",
      100.0 * (h.mfs_at_15 / h.hardlink_at_15 - 1.0),
      100.0 * (h.mfs_at_15 / h.mbox_at_15 - 1.0),
      100.0 * (h.mfs_at_15 / h.maildir_at_15 - 1.0));
  return 0;
}
