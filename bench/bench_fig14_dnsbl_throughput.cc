// Figure 14: mail throughput vs offered connection rate with
// prefix-based vs IP-based DNSBL lookups.
//
// Paper setup (§7.2): open-system client (program 2) replaying the
// two-month spam trace, postfix process limit 1000, 24 h reply TTL.
// Paper result: the two schemes match at low rates; a gap opens at
// ~150 connections/sec and prefix-based lookups deliver ~10.8% higher
// mail throughput at 200 connections/sec.
#include <cstdio>
#include <span>
#include <vector>

#include "bench/bench_util.h"
#include "fskit/fs_model.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "mta/drivers.h"
#include "mta/sim_server.h"
#include "trace/sinkhole.h"
#include "util/stats.h"

namespace {

using sams::bench::BenchArgs;
using sams::dnsbl::CacheMode;
using sams::util::SimTime;
using sams::util::TextTable;

double RunOne(CacheMode mode, double rate, const sams::trace::SinkholeModel& sinkhole,
              const BenchArgs& args) {
  sams::util::Rng server_rng(args.seed);
  const auto listed = sinkhole.ListedIps();
  const auto lists = sams::dnsbl::MakeFigureFiveServers(listed, server_rng);
  std::vector<const sams::dnsbl::DnsblServer*> servers;
  for (const auto& list : lists) servers.push_back(list.get());

  sams::util::Rng resolver_rng(args.seed + 1);
  sams::dnsbl::Resolver resolver(mode, servers, SimTime::Hours(24),
                                 resolver_rng);

  // Pre-warm: replay the first segment of the trace through the
  // resolver so the driven run starts at steady-state hit ratios (the
  // paper emulates the cache over the whole two-month trace).
  const std::size_t prewarm = sinkhole.sessions().size() / 3;
  for (std::size_t i = 0; i < prewarm; ++i) {
    const auto& session = sinkhole.sessions()[i];
    resolver.Lookup(session.client_ip, session.arrival);
  }

  sams::sim::Machine machine;
  sams::fskit::Ext3Model ext3;
  sams::fskit::SimFs fs(machine.disk(), ext3);
  sams::mfs::SimMboxStore store(fs);
  sams::mta::SimServerConfig cfg;
  cfg.process_limit = 1'000;  // §7.2
  sams::mta::SimMailServer server(machine, cfg, store, &resolver);

  sams::util::Rng arrival_rng(args.seed + 2);
  const std::span<const sams::trace::SessionSpec> driven(
      sinkhole.sessions().data() + prewarm,
      sinkhole.sessions().size() - prewarm);
  const auto result = sams::mta::RunOpenLoop(
      machine, server, driven, rate,
      SimTime::Seconds(args.quick ? 20 : 90),
      SimTime::Seconds(args.quick ? 60 : 240), arrival_rng, &resolver);
  return result.goodput_mails_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Figure 14 - throughput vs connection rate (IP vs prefix DNSBL)",
      "ICDCS'09 section 7.2, Figure 14",
      "equal at low rates; gap opens ~150 conn/s; prefix +10.8% at 200");

  sams::trace::SinkholeConfig scfg;
  if (args.quick) {
    scfg.n_connections = 30'000;
    scfg.n_ips = 6'000;
    scfg.n_prefixes = 2'700;
  }
  const sams::trace::SinkholeModel sinkhole(scfg);

  const std::vector<double> rates =
      args.quick ? std::vector<double>{50, 150, 200}
                 : std::vector<double>{40, 80, 120, 150, 170, 200, 230};
  TextTable table({"conn rate (/s)", "IP-cache mails/s", "prefix mails/s",
                   "gain"});
  sams::obs::Registry summary;
  double ip200 = 0, px200 = 0;
  for (double rate : rates) {
    const double ip = RunOne(CacheMode::kIpCache, rate, sinkhole, args);
    const double px = RunOne(CacheMode::kPrefixCache, rate, sinkhole, args);
    if (rate == 200) {
      ip200 = ip;
      px200 = px;
    }
    const std::string rate_label = TextTable::Num(rate, 0);
    summary
        .GetGauge("bench_fig14_mails_per_sec", "goodput at offered rate",
                  {{"mode", "ip-cache"}, {"rate", rate_label}})
        .Set(ip);
    summary
        .GetGauge("bench_fig14_mails_per_sec", "goodput at offered rate",
                  {{"mode", "prefix-cache"}, {"rate", rate_label}})
        .Set(px);
    table.AddRow({rate_label, TextTable::Num(ip, 1), TextTable::Num(px, 1),
                  TextTable::Pct(px / ip - 1.0)});
  }
  sams::bench::PrintTable(table);
  std::printf(
      "\n  prefix-based gain at 200 conn/s: +%.1f%% (paper: +10.8%%)\n",
      100.0 * (px200 / ip200 - 1.0));
  summary
      .GetGauge("bench_fig14_prefix_gain_at_200",
                "prefix/ip goodput ratio - 1 at 200 conn/s")
      .Set(ip200 > 0 ? px200 / ip200 - 1.0 : 0.0);
  const char* json_path = "BENCH_fig14_dnsbl_throughput.json";
  const sams::util::Error err = sams::obs::WriteJsonSnapshot(summary, json_path);
  if (err.ok()) {
    std::printf("  summary written to %s\n\n", json_path);
  } else {
    std::fprintf(stderr, "  summary write failed: %s\n\n",
                 err.ToString().c_str());
  }
  return 0;
}
