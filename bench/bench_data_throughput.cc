// DATA-path throughput (DESIGN.md §14): how fast body bytes move from
// the wire into the mail store, for the seed copy path vs the pooled
// zero-copy path, and for the epoll vs io_uring reactor backends.
//
// Two sections:
//   in-process  One driver thread pumps 256 KiB dot-stuffed bodies
//               straight into a ServerSession wired to a real MFS
//               store — no sockets, so the measured difference is the
//               copy ladder itself (inbuf append + per-line body
//               append + flatten, vs pinned spans + vectored write).
//               Single-threaded by construction, so MB/s here IS MB/s
//               per core.
//   loopback    The full server (1 shard + workers) on 127.0.0.1 with
//               concurrent SMTP clients, pooled path on, measured for
//               both reactor backends. io_uring rows SKIP cleanly when
//               the kernel or sandbox cannot set a ring up.
//
// Writes BENCH_data_throughput.json. --smoke gates the in-process
// pooled/copy ratio (the full-run record lives in EXPERIMENTS.md).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mfs/mail_id.h"
#include "mfs/store.h"
#include "mta/smtp_server.h"
#include "net/reactor.h"
#include "net/smtp_client.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "smtp/dotstuff.h"
#include "smtp/server_session.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace {

struct Args {
  bool quick = false;
  bool smoke = false;
  std::uint64_t seed = 42;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

// A 256 KiB body of realistic SMTP text: full-width lines with a
// sprinkle of dot-stuffed ones, so the decoder's stuffing branch runs.
std::string MakeBody() {
  std::string body;
  const std::string line(78, 'm');
  int i = 0;
  while (body.size() < 256 * 1024) {
    if (++i % 37 == 0) {
      body += ".leading dot line\n";
    } else {
      body += line;
      body += '\n';
    }
  }
  return body;
}

// --- section 1: in-process DATA path ---------------------------------

// Pumps `mails` transactions through one ServerSession into a real MFS
// store and returns MB/s of body payload. `pooled` switches the
// session to span mode and the delivery to DeliverParts — the
// zero-copy ladder; off reproduces the seed copy path exactly.
double RunInprocess(bool pooled, int mails, const std::string& wire,
                    std::size_t body_bytes) {
  namespace fs = std::filesystem;
  const std::string root =
      (fs::temp_directory_path() /
       (std::string("sams_bench_data_") + (pooled ? "pooled" : "copy")))
          .string();
  fs::remove_all(root);
  auto store = sams::mfs::MakeMfsStore(root, {});
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.error().ToString().c_str());
    std::exit(1);
  }
  sams::util::Rng rng(0xBE7C);

  sams::smtp::SessionConfig cfg;
  cfg.zero_copy_data = pooled;
  std::uint64_t delivered = 0;
  const std::vector<std::string> boxes = {"alice"};
  sams::smtp::ServerSession::Hooks hooks;
  hooks.send = [](std::string) { return true; };
  hooks.validate_rcpt = [](const sams::smtp::Address&) { return true; };
  hooks.on_mail = [&](sams::smtp::Envelope&& env) {
    const sams::mfs::MailId id = sams::mfs::MailId::Generate(rng);
    const sams::util::Error err =
        env.has_parts()
            ? (*store)->DeliverParts(
                  id, std::span<const std::string_view>(env.body_parts),
                  boxes)
            : (*store)->Deliver(id, env.body, boxes);
    if (err.ok()) ++delivered;
  };
  sams::smtp::ServerSession session(cfg, std::move(hooks), "127.0.0.1");
  session.Start();
  session.Feed("HELO bench.test\r\n");

  // The wire buffer stands in for the pooled receive arena: chunks are
  // fed via FeedPinned aliasing it, the pin a no-op keeper. Both paths
  // are fed identically; only cfg.zero_copy_data differs.
  const std::shared_ptr<const void> pin(&wire, [](const void*) {});
  constexpr std::size_t kChunk = 16 * 1024;

  const std::int64_t t0 = sams::util::MonotonicNanos();
  for (int m = 0; m < mails; ++m) {
    session.Feed("MAIL FROM:<sender@remote.test>\r\n");
    session.Feed("RCPT TO:<alice@dept.test>\r\n");
    session.Feed("DATA\r\n");
    for (std::size_t off = 0; off < wire.size(); off += kChunk) {
      const std::size_t len = std::min(kChunk, wire.size() - off);
      session.FeedPinned(std::string_view(wire.data() + off, len), pin);
    }
  }
  const std::int64_t t1 = sams::util::MonotonicNanos();
  if (delivered != static_cast<std::uint64_t>(mails)) {
    std::fprintf(stderr, "in-process %s: delivered %llu of %d\n",
                 pooled ? "pooled" : "copy",
                 static_cast<unsigned long long>(delivered), mails);
    std::exit(1);
  }
  store->reset();
  fs::remove_all(root);
  const double secs = static_cast<double>(t1 - t0) / 1e9;
  return static_cast<double>(body_bytes) * mails / 1e6 / secs;
}

// --- section 2: loopback, both reactor backends ----------------------

struct SocketResult {
  bool ran = false;
  double mb_per_s = 0;
  double mb_per_s_per_core = 0;
};

SocketResult RunLoopback(sams::net::IoBackendKind backend, int mails,
                         int clients, const std::string& body) {
  namespace fs = std::filesystem;
  SocketResult res;
  const std::string root =
      (fs::temp_directory_path() / "sams_bench_data_sock").string();
  fs::remove_all(root);
  auto store = sams::mfs::MakeMfsStore(root, {});
  if (!store.ok()) return res;

  sams::mta::RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  sams::mta::RealServerConfig cfg;
  cfg.architecture = sams::mta::Architecture::kForkAfterTrust;
  cfg.num_shards = 1;
  cfg.worker_count = clients;
  cfg.io_backend = backend;
  cfg.recv_timeout_ms = 30'000;
  cfg.send_timeout_ms = 30'000;
  sams::mta::SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  if (!port.ok()) {
    std::fprintf(stderr, "server: %s\n", port.error().ToString().c_str());
    return res;
  }

  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  const std::int64_t t0 = sams::util::MonotonicNanos();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int m = c; m < mails; m += clients) {
        sams::smtp::MailJob job;
        job.helo = "bench.test";
        job.mail_from = *sams::smtp::Path::Parse("<sender@remote.test>");
        job.rcpts.push_back(*sams::smtp::Path::Parse("<alice@dept.test>"));
        job.body = body;
        auto result =
            sams::net::SendMail("127.0.0.1", *port, std::move(job),
                                sams::smtp::AbortStage::kNone, 30'000);
        if (result.ok() &&
            result->outcome == sams::smtp::ClientOutcome::kDelivered) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::int64_t t1 = sams::util::MonotonicNanos();
  server.Stop();
  store->reset();
  fs::remove_all(root);
  if (ok.load() != mails) {
    std::fprintf(stderr, "loopback %s: delivered %d of %d\n",
                 sams::net::IoBackendKindName(backend), ok.load(), mails);
    return res;
  }
  const double secs = static_cast<double>(t1 - t0) / 1e9;
  // Threads actually driven: the clients plus the shard loop and the
  // delivering workers — capped by the machine.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double cores = static_cast<double>(
      std::min<unsigned>(hw, static_cast<unsigned>(clients) + 2));
  res.ran = true;
  res.mb_per_s = static_cast<double>(body.size()) * mails / 1e6 / secs;
  res.mb_per_s_per_core = res.mb_per_s / cores;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  sams::bench::PrintHeader(
      "DATA->MFS throughput: copy vs zero-copy, epoll vs io_uring",
      "DESIGN.md section 14; paper sections 5-6 (the receive path spam "
      "load saturates)",
      "256 KiB dot-stuffed bodies; in-process isolates the copy ladder, "
      "loopback adds the socket path");

  const std::string body = MakeBody();
  const std::string wire = sams::smtp::DotStuffEncode(body);
  const int inproc_mails = args.smoke || args.quick ? 64 : 400;
  const int sock_mails = args.smoke || args.quick ? 32 : 200;
  const int clients = 2;

  // Warm-up round (page cache, store directories), then measured.
  (void)RunInprocess(false, 4, wire, body.size());
  (void)RunInprocess(true, 4, wire, body.size());
  const double copy_mbs = RunInprocess(false, inproc_mails, wire, body.size());
  const double pooled_mbs = RunInprocess(true, inproc_mails, wire, body.size());
  const double ratio = copy_mbs > 0 ? pooled_mbs / copy_mbs : 0;

  sams::util::TextTable table(
      {"path", "transport", "backend", "MB/s", "MB/s/core"});
  const auto num = [](double v) { return sams::util::TextTable::Num(v, 1); };
  table.AddRow({"copy", "in-process", "-", num(copy_mbs), num(copy_mbs)});
  table.AddRow({"pooled", "in-process", "-", num(pooled_mbs),
                num(pooled_mbs)});

  sams::obs::Registry summary;
  summary
      .GetGauge("bench_data_throughput_mb_per_s",
                "body MB/s through the DATA->MFS path",
                {{"path", "copy"}, {"transport", "inproc"}})
      .Set(copy_mbs);
  summary
      .GetGauge("bench_data_throughput_mb_per_s",
                "body MB/s through the DATA->MFS path",
                {{"path", "pooled"}, {"transport", "inproc"}})
      .Set(pooled_mbs);
  summary
      .GetGauge("bench_data_throughput_pooled_over_copy",
                "in-process speedup of the zero-copy path (1.0 = parity)")
      .Set(ratio);

  const sams::net::IoBackendKind kinds[] = {
      sams::net::IoBackendKind::kEpoll, sams::net::IoBackendKind::kIoUring};
  bool socket_failed = false;
  for (const auto kind : kinds) {
    const char* name = sams::net::IoBackendKindName(kind);
    if (kind == sams::net::IoBackendKind::kIoUring &&
        !sams::net::IoUringAvailable()) {
      std::printf("  loopback %s: SKIP (ring unavailable)\n", name);
      continue;
    }
    const SocketResult r = RunLoopback(kind, sock_mails, clients, body);
    if (!r.ran) {
      socket_failed = true;
      continue;
    }
    table.AddRow({"pooled", "loopback", name, num(r.mb_per_s),
                  num(r.mb_per_s_per_core)});
    summary
        .GetGauge("bench_data_throughput_mb_per_s",
                  "body MB/s through the DATA->MFS path",
                  {{"path", "pooled"},
                   {"transport", "loopback"},
                   {"backend", name}})
        .Set(r.mb_per_s);
    summary
        .GetGauge("bench_data_throughput_mb_per_s_per_core",
                  "loopback body MB/s divided by threads driven",
                  {{"backend", name}})
        .Set(r.mb_per_s_per_core);
  }
  sams::bench::PrintTable(table);
  std::printf("  pooled/copy speedup (in-process): %.2fx\n", ratio);

  const char* json_path = "BENCH_data_throughput.json";
  const sams::util::Error err =
      sams::obs::WriteJsonSnapshot(summary, json_path);
  if (err.ok()) {
    std::printf("  summary written to %s\n", json_path);
  } else {
    std::fprintf(stderr, "  summary write failed: %s\n",
                 err.ToString().c_str());
  }

  if (socket_failed) return 1;
  if (args.smoke) {
    // Looser than the full-run 1.3x record (EXPERIMENTS.md): smoke
    // runs ride loaded CI boxes.
    if (ratio < 1.15) {
      std::fprintf(stderr,
                   "SMOKE FAIL: pooled path only %.2fx the copy path\n",
                   ratio);
      return 1;
    }
    std::printf("  SMOKE OK: zero-copy %.2fx >= 1.15x\n", ratio);
  }
  return 0;
}
