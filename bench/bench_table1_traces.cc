// Table 1: the measurement testbed, software, and trace statistics —
// regenerated from this reproduction's synthetic substitutes.
#include <cstdio>

#include "bench/bench_util.h"
#include "trace/sinkhole.h"
#include "trace/univ.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const auto args = sams::bench::BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Table 1 - testbed, software and traces",
      "ICDCS'09 section 3, Table 1",
      "sinkhole: 101,692 conns / 19,492 IPs / 8,832 /24s; univ: 1,862,349 "
      "conns, 67% spam");

  std::printf(
      "  Server machine   : simulated 3 GHz single-core CPU, journaling\n"
      "                     disk (6 ms commit, 40 MB/s effective), 30 ms\n"
      "                     emulated WAN RTT  [sams::sim substitution for\n"
      "                     the paper's Xeon/SCSI/tc testbed]\n"
      "  Server software  : sams::mta (postfix-class model), vanilla and\n"
      "                     fork-after-trust architectures\n"
      "  Client program 1 : closed-system driver (RunClosedLoop)\n"
      "  Client program 2 : open-system Poisson driver (RunOpenLoop)\n\n");

  // Spam trace.
  sams::trace::SinkholeConfig scfg;
  if (args.quick) {
    scfg.n_connections = 20'000;
    scfg.n_ips = 4'000;
    scfg.n_prefixes = 1'800;
  }
  const sams::trace::SinkholeModel sinkhole(scfg);
  const auto s = sinkhole.Summary();

  // Univ trace. The full 1.86M-connection generation runs in a few
  // seconds; quick mode scales it down.
  sams::trace::UnivConfig ucfg;
  if (args.quick) {
    ucfg.n_connections = 100'000;
    ucfg.n_spam_ips = 30'000;
    ucfg.n_ham_ips = 2'000;
  }
  const sams::trace::UnivModel univ(ucfg);
  const auto u = univ.Summary();

  sams::util::TextTable table({"trace", "connections", "unique IPs",
                               "unique /24s", "spam ratio", "mean rcpts"});
  table.AddRow({"sinkhole (paper)", "101,692", "19,492", "8,832", "100%",
                "~7"});
  table.AddRow({"sinkhole (ours)", std::to_string(s.connections),
                std::to_string(s.unique_ips),
                std::to_string(s.unique_prefixes24),
                sams::util::TextTable::Pct(s.spam_ratio, 0),
                sams::util::TextTable::Num(s.mean_rcpts, 2)});
  table.AddRow({"univ (paper)", "1,862,349", "621,124", "344,679", "67%*",
                "-"});
  table.AddRow({"univ (ours)", std::to_string(u.connections),
                std::to_string(u.unique_ips),
                std::to_string(u.unique_prefixes24),
                sams::util::TextTable::Pct(u.spam_ratio, 0),
                sams::util::TextTable::Num(u.mean_rcpts, 2)});
  sams::bench::PrintTable(table);
  std::printf(
      "\n  * the paper's 67%% counts SpamAssassin-flagged *delivered* mail;\n"
      "    our univ summary also counts bounce/unfinished sessions (which\n"
      "    are spam by construction) — delivered-mail spam share is 67%%.\n"
      "  univ bounce ratio %.1f%%, unfinished %.1f%% (ECN, Figure 3).\n\n",
      100 * u.bounce_ratio, 100 * u.unfinished_ratio);
  return 0;
}
