// Telemetry-plane overhead bench (DESIGN.md §11): goodput of the real
// fork-after-trust server with the full observability stack OFF vs ON.
//
// Both modes run the metrics registry and per-session span tracing
// (BindObservability) — that instrumentation predates the telemetry
// plane and is on in every production configuration. ON adds what this
// plane introduced: the structured event log with one JSONL record per
// session (BindEventLog, sunk to /dev/null so the cost measured is
// ours, not the disk's), the 100 ms time-series sampler, and the stall
// watchdog timer on every shard. The delta is therefore exactly the
// plane's cost, not a re-measure of the pre-existing metrics.
//
// Workload: the shard-scaling bench's traffic shape — concurrent
// loopback clients, 70% spam (554 at RCPT inside a shard) / 30% ham
// (delivered into MFS through the worker pool).
//
// The claim under test: the plane costs < 3% CPU per session. CPU
// time (getrusage) is the gated metric because wall throughput on a
// shared or 1-core builder swings ±15% between identical runs; wall
// sessions/sec is still measured and reported. Each rep runs both
// modes and each mode keeps its best rep, so a background-noise
// outlier hits both modes alike. The order within a rep ALTERNATES
// (off-first, then on-first): every run parks tens of thousands of
// loopback sockets in TIME_WAIT, which taxes whichever run comes next
// — a fixed order would bill that tax to one mode. --smoke runs
// the short version and exits nonzero when the gate fails.
//
// Artifacts: BENCH_obs_overhead.json (summary gauges) and
// BENCH_obs_overhead.series.json (the sampler's ring dump from the
// last ON rep — proof the time-series plane was live during the run).
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mta/smtp_server.h"
#include "net/smtp_client.h"
#include "obs/event_log.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/series.h"
#include "obs/span.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using sams::mta::Architecture;
using sams::mta::RealServerConfig;
using sams::mta::RecipientDb;
using sams::mta::SmtpServer;
using sams::smtp::ClientOutcome;
using sams::smtp::MailJob;
using sams::smtp::Path;

struct Args {
  bool quick = false;
  bool smoke = false;
  std::uint64_t seed = 42;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

struct RunResult {
  double sessions_per_sec = 0;
  double cpu_us_per_session = 0;
  std::uint64_t sessions = 0;
  std::uint64_t mails = 0;
  std::uint64_t events_emitted = 0;
  std::uint64_t spans_recorded = 0;
  std::uint64_t samples_taken = 0;
  std::string series_json;
  bool failed = false;
};

MailJob MakeJob(const std::string& rcpt, std::string body) {
  MailJob job;
  job.helo = "bench.client";
  job.mail_from = *Path::Parse("<load@bench.test>");
  job.rcpts.push_back(*Path::Parse("<" + rcpt + ">"));
  job.body = std::move(body);
  return job;
}

RunResult RunOne(bool telemetry, int num_shards, int worker_count,
                 int client_threads, int duration_ms, std::uint64_t seed) {
  RunResult result;
  const std::string root =
      (std::filesystem::temp_directory_path() /
       (std::string("sams_bench_obs_") + (telemetry ? "on" : "off")))
          .string();
  std::filesystem::remove_all(root);
  auto store = sams::mfs::MakeMfsStore(root, {});
  if (!store.ok()) {
    result.failed = true;
    return result;
  }
  RecipientDb db;
  for (const char* user : {"alice", "bob", "carol", "dave"}) {
    db.AddMailbox(user, "dept.test");
  }
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = worker_count;
  cfg.num_shards = num_shards;
  cfg.recv_timeout_ms = 5'000;
  if (telemetry) cfg.stall_watchdog_ms = 250;
  SmtpServer server(cfg, std::move(db), **store);

  // The full production telemetry plane, assembled exactly as
  // live_smtp_server does it.
  sams::obs::Registry registry;
  sams::obs::TraceSink trace(8192);
  sams::obs::EventLog::Options log_opts;
  log_opts.path = "/dev/null";
  sams::obs::EventLog event_log(std::move(log_opts));
  sams::obs::TimeSeries series({/*interval_ms=*/100, /*capacity=*/600});
  server.BindObservability(registry, &trace);
  if (telemetry) {
    server.BindEventLog(&event_log);
    event_log.BindMetrics(registry);
    series.BindMetrics(registry);
    series.AddCounterProbe(registry, "sessions", "sams_smtp_connections_total",
                           {{"arch", "fork-after-trust"}});
    series.AddCounterProbe(registry, "delivered",
                           "sams_smtp_mails_delivered_total",
                           {{"arch", "fork-after-trust"}});
    series.AddProbe("inflight",
                    [&server] { return static_cast<double>(server.inflight()); });
  }

  auto port = server.Start();
  if (!port.ok()) {
    result.failed = true;
    return result;
  }
  if (telemetry) series.Start();

  static const char* kHam[] = {"alice@dept.test", "bob@dept.test",
                               "carol@dept.test", "dave@dept.test"};
  std::atomic<std::uint64_t> sessions{0};
  std::atomic<std::uint64_t> mails{0};
  auto cpu_micros = [] {
    struct rusage usage {};
    ::getrusage(RUSAGE_SELF, &usage);
    const auto micros = [](const struct timeval& tv) {
      return static_cast<double>(tv.tv_sec) * 1e6 +
             static_cast<double>(tv.tv_usec);
    };
    return micros(usage.ru_utime) + micros(usage.ru_stime);
  };
  const double cpu_start_us = cpu_micros();
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(duration_ms);
  std::vector<std::thread> clients;
  for (int t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      sams::util::Rng rng(seed + 1000003ULL * static_cast<std::uint64_t>(t));
      int i = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        const bool is_spam = rng.Bernoulli(0.7);
        const std::string rcpt =
            is_spam ? "victim" + std::to_string(i) + "@nowhere.test"
                    : kHam[rng.UniformInt(0, 3)];
        auto outcome = sams::net::SendMail(
            "127.0.0.1", *port, MakeJob(rcpt, "x\n"),
            sams::smtp::AbortStage::kNone, 3'000);
        ++i;
        if (!outcome.ok()) continue;
        sessions.fetch_add(1, std::memory_order_relaxed);
        if (outcome->outcome == ClientOutcome::kDelivered) {
          mails.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double cpu_spent_us = cpu_micros() - cpu_start_us;
  result.spans_recorded = trace.recorded();
  if (telemetry) {
    series.Stop();
    result.events_emitted = event_log.emitted();
    result.samples_taken = series.samples_taken();
    result.series_json = series.ToJson();
  }
  server.Stop();
  std::filesystem::remove_all(root);

  result.sessions = sessions.load();
  result.mails = mails.load();
  result.sessions_per_sec =
      seconds > 0 ? static_cast<double>(result.sessions) / seconds : 0;
  result.cpu_us_per_session =
      result.sessions > 0
          ? cpu_spent_us / static_cast<double>(result.sessions)
          : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  sams::bench::PrintHeader(
      "Telemetry overhead: full observability plane off vs on",
      "DESIGN.md section 11 (telemetry plane)",
      "metrics + spans + event log + sampler + watchdog cost < 3% "
      "sessions/sec");

  // A multi-core host runs the production shape (2 shards, 2 workers,
  // 4 clients). A 1-core builder time-shares every thread on the same
  // CPU, where the gate would measure scheduler interleaving, not the
  // plane — shrink to the minimum thread count so the comparison stays
  // about per-session cost.
  const unsigned hw = std::thread::hardware_concurrency();
  const int num_shards = hw >= 2 ? 2 : 1;
  const int worker_count = hw >= 2 ? 2 : 1;
  const int client_threads = hw >= 2 ? 4 : 2;
  const int reps = args.smoke ? 4 : (args.quick ? 3 : 4);
  const int duration_ms = args.smoke ? 500 : (args.quick ? 800 : 2'000);
  std::printf("  hardware threads: %u (%d shards, %d workers, %d clients)\n\n",
              hw, num_shards, worker_count, client_threads);

  double best_off = 0;
  double best_on = 0;
  double best_cpu_off = 0;  // lowest CPU us/session seen (0 = none yet)
  double best_cpu_on = 0;
  RunResult last_on;
  bool any_failed = false;
  sams::util::TextTable table({"rep", "telemetry", "sessions/s",
                               "cpu us/sess", "ham mails", "events", "spans"});
  for (int rep = 0; rep < reps; ++rep) {
    const bool off_first = rep % 2 == 0;
    for (const bool telemetry : {!off_first, off_first}) {
      const RunResult r = RunOne(telemetry, num_shards, worker_count,
                                 client_threads, duration_ms, args.seed + rep);
      if (r.failed) {
        any_failed = true;
        std::fprintf(stderr, "  rep %d (%s) FAILED to start\n", rep,
                     telemetry ? "on" : "off");
        continue;
      }
      table.AddRow({std::to_string(rep), telemetry ? "on" : "off",
                    sams::util::TextTable::Num(r.sessions_per_sec, 1),
                    sams::util::TextTable::Num(r.cpu_us_per_session, 1),
                    std::to_string(r.mails), std::to_string(r.events_emitted),
                    std::to_string(r.spans_recorded)});
      if (telemetry) {
        if (r.sessions_per_sec > best_on) best_on = r.sessions_per_sec;
        if (best_cpu_on == 0 || r.cpu_us_per_session < best_cpu_on) {
          best_cpu_on = r.cpu_us_per_session;
        }
        last_on = r;
      } else {
        if (r.sessions_per_sec > best_off) best_off = r.sessions_per_sec;
        if (best_cpu_off == 0 || r.cpu_us_per_session < best_cpu_off) {
          best_cpu_off = r.cpu_us_per_session;
        }
      }
    }
  }
  sams::bench::PrintTable(table);

  // Best-of-reps for each mode: scheduler noise produces slow outliers,
  // never fast ones, so best-vs-best isolates the real per-session cost.
  const double overhead_pct =
      best_off > 0 ? (best_off - best_on) / best_off * 100.0 : 0;
  const double clamped = overhead_pct < 0 ? 0 : overhead_pct;
  // The gated metric: CPU microseconds consumed per completed session.
  // Wall throughput on a shared/1-core builder swings ±15% between
  // identical runs (scheduler interleaving, TIME_WAIT table size); CPU
  // time actually charged to the process is stable and is what the
  // plane's instrumentation, formatting and sampling genuinely add.
  const double cpu_overhead_pct =
      best_cpu_off > 0
          ? (best_cpu_on - best_cpu_off) / best_cpu_off * 100.0
          : 0;
  const double cpu_clamped = cpu_overhead_pct < 0 ? 0 : cpu_overhead_pct;

  sams::obs::Registry summary;
  summary
      .GetGauge("bench_obs_overhead_sessions_per_sec",
                "best sessions/sec", {{"telemetry", "off"}})
      .Set(best_off);
  summary
      .GetGauge("bench_obs_overhead_sessions_per_sec",
                "best sessions/sec", {{"telemetry", "on"}})
      .Set(best_on);
  summary
      .GetGauge("bench_obs_overhead_pct",
                "telemetry-on sessions/sec cost, percent (clamped at 0)")
      .Set(clamped);
  summary
      .GetGauge("bench_obs_overhead_cpu_us_per_session",
                "best CPU us per session", {{"telemetry", "off"}})
      .Set(best_cpu_off);
  summary
      .GetGauge("bench_obs_overhead_cpu_us_per_session",
                "best CPU us per session", {{"telemetry", "on"}})
      .Set(best_cpu_on);
  summary
      .GetGauge("bench_obs_overhead_cpu_pct",
                "telemetry-on CPU cost per session, percent (clamped at 0)")
      .Set(cpu_clamped);
  summary
      .GetGauge("bench_obs_overhead_events_emitted",
                "event-log records in the last telemetry-on rep")
      .Set(static_cast<double>(last_on.events_emitted));
  summary
      .GetGauge("bench_obs_overhead_spans_recorded",
                "trace spans in the last telemetry-on rep")
      .Set(static_cast<double>(last_on.spans_recorded));
  summary
      .GetGauge("bench_obs_overhead_samples_taken",
                "time-series sampler ticks in the last telemetry-on rep")
      .Set(static_cast<double>(last_on.samples_taken));

  const char* json_path = "BENCH_obs_overhead.json";
  const sams::util::Error err =
      sams::obs::WriteJsonSnapshot(summary, json_path);
  if (err.ok()) {
    std::printf("\n  summary written to %s\n", json_path);
  } else {
    std::fprintf(stderr, "\n  summary write failed: %s\n",
                 err.ToString().c_str());
  }
  if (!last_on.series_json.empty()) {
    std::ofstream out("BENCH_obs_overhead.series.json");
    out << last_on.series_json << "\n";
    std::printf("  sampler rings written to BENCH_obs_overhead.series.json\n");
  }

  std::printf("  best off: %.1f sessions/s (%.1f cpu us/sess)\n", best_off,
              best_cpu_off);
  std::printf("  best on:  %.1f sessions/s (%.1f cpu us/sess)\n", best_on,
              best_cpu_on);
  std::printf("  wall overhead: %.2f%% (raw %.2f%%)\n", clamped, overhead_pct);
  std::printf("  cpu overhead:  %.2f%% (raw %.2f%%)\n", cpu_clamped,
              cpu_overhead_pct);
  if (any_failed) return 1;
  if (args.smoke) {
    // Same 1-core carve-out as bench_shard_scaling: with one hardware
    // thread the sampler/watchdog/event-log threads time-share the data
    // plane's only CPU, so the delta measures preemption, not the
    // plane's per-session cost. Report, but don't gate.
    if (hw < 2) {
      std::printf("  gate SKIPPED: %u hardware thread(s), overhead gate "
                  "needs >= 2 cores\n\n", hw);
      return 0;
    }
    const bool ok = cpu_clamped < 3.0;
    std::printf("  gate (< 3%% CPU/session overhead): %s\n\n",
                ok ? "pass" : "NO - REGRESSION");
    return ok ? 0 : 1;
  }
  std::printf("\n");
  return 0;
}
