// Figure 10: throughput of the four postfix store variants on the
// Ext3 journal file system, versus recipients per connection.
//
// Paper claims: (1) vanilla mbox throughput grows ~7.2x from 1 to 15
// recipients; (2) MFS beats vanilla mbox by ~39% at 15 recipients;
// (3) maildir and hard-link perform much worse than both on Ext3.
// Also reproduces §6.3's sinkhole-trace comparison (MFS +20%).
#include <cstdio>

#include "bench/mfs_throughput_bench.h"

int main(int argc, char** argv) {
  const auto args = sams::bench::BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Figure 10 - store throughput vs recipients per connection (Ext3)",
      "ICDCS'09 section 6.3, Figure 10",
      "mbox x7.2 from 1->15 rcpts; MFS +39% over mbox at 15; maildir & "
      "hard-link far worse");

  sams::fskit::Ext3Model ext3;
  const auto h = sams::bench::RunStoreSweep(ext3, args);
  std::printf(
      "\n  mbox scale-up 1->15 rcpts: x%.1f   (paper: x7.2)\n"
      "  MFS vs mbox at 15 rcpts:   +%.1f%% (paper: +39%%)\n"
      "  maildir vs mbox at 15:      %.2fx  (paper: 'much worse')\n"
      "  hard-link vs mbox at 15:    %.2fx  (paper: 'much worse')\n",
      h.mbox_at_15 / h.mbox_at_1, 100.0 * (h.mfs_at_15 / h.mbox_at_15 - 1.0),
      h.maildir_at_15 / h.mbox_at_15, h.hardlink_at_15 / h.mbox_at_15);

  sams::bench::RunSinkholeComparison(ext3, args);
  std::printf("\n");
  return 0;
}
