// Figure 8: goodput (good mails/sec) of the vanilla process-per-
// connection architecture vs the fork-after-trust hybrid, as the
// bounce ratio of the synthetic trace rises from 0 to 1.
//
// Paper: vanilla goodput "steadily declines as the percentage of
// bounce mails is increased"; hybrid goodput "stays almost constant
// until the bounce ratio reaches 0.9"; the total number of context
// switches is reduced by "close to a factor of two".
//
// Setup mirrors §5.4: synthetic trace with Univ mail sizes and varying
// bounce ratio, closed-system client (program 1), vanilla at its
// optimal 500 processes, hybrid at 700 sockets.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "fskit/fs_model.h"
#include "mta/drivers.h"
#include "mta/sim_server.h"
#include "trace/synthetic.h"
#include "util/stats.h"

namespace {

using sams::bench::BenchArgs;
using sams::util::SimTime;
using sams::util::TextTable;

struct Point {
  double goodput = 0;
  std::uint64_t ctx_switches = 0;
};

Point RunOne(bool hybrid, double bounce_ratio, const BenchArgs& args) {
  sams::trace::BounceSweepConfig tcfg;
  tcfg.n_sessions = args.quick ? 10'000 : 30'000;
  tcfg.bounce_ratio = bounce_ratio;
  tcfg.seed = args.seed;
  const auto sessions = sams::trace::MakeBounceSweepTrace(tcfg);

  sams::sim::Machine machine;
  sams::fskit::Ext3Model ext3;
  sams::fskit::SimFs fs(machine.disk(), ext3);
  sams::mfs::SimMboxStore store(fs);

  sams::mta::SimServerConfig cfg;
  cfg.hybrid = hybrid;
  cfg.process_limit = hybrid ? 200 : 500;  // hybrid workers handle DATA only
  cfg.master_connection_limit = 700;       // "up to a maximum of 700 sockets"
  // The Figure 8 synthetic bounces quit promptly after rejection.
  cfg.unfinished_hold = SimTime{};
  sams::mta::SimMailServer server(machine, cfg, store);

  const SimTime warmup = SimTime::Seconds(args.quick ? 20 : 40);
  const SimTime window = SimTime::Seconds(args.quick ? 60 : 120);
  const auto result = sams::mta::RunClosedLoop(machine, server, sessions,
                                               /*concurrency=*/700, warmup,
                                               window);
  return Point{result.goodput_mails_per_sec, result.context_switches};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Figure 8 - goodput vs bounce ratio (Vanilla vs Hybrid)",
      "ICDCS'09 section 5.4, Figure 8",
      "vanilla declines steadily; hybrid ~flat until bounce ratio 0.9; "
      "~2x fewer context switches");

  const std::vector<double> ratios =
      args.quick ? std::vector<double>{0.0, 0.5, 0.9}
                 : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9, 0.95, 1.0};

  TextTable table({"bounce_ratio", "vanilla mails/s", "hybrid mails/s",
                   "vanilla cs", "hybrid cs", "cs ratio"});
  double vanilla_at_0 = 0, hybrid_at_0 = 0, hybrid_at_09 = 0;
  for (double ratio : ratios) {
    const Point vanilla = RunOne(false, ratio, args);
    const Point hybrid = RunOne(true, ratio, args);
    if (ratio == 0.0) {
      vanilla_at_0 = vanilla.goodput;
      hybrid_at_0 = hybrid.goodput;
    }
    if (ratio == 0.9) hybrid_at_09 = hybrid.goodput;
    table.AddRow(
        {TextTable::Num(ratio, 2), TextTable::Num(vanilla.goodput, 1),
         TextTable::Num(hybrid.goodput, 1),
         std::to_string(vanilla.ctx_switches),
         std::to_string(hybrid.ctx_switches),
         TextTable::Num(vanilla.ctx_switches /
                            std::max(1.0, static_cast<double>(hybrid.ctx_switches)),
                        2)});
  }
  sams::bench::PrintTable(table);
  std::printf(
      "\n  hybrid retains %.0f%% of its zero-bounce goodput at ratio 0.9 "
      "(paper: ~flat until 0.9)\n",
      100.0 * hybrid_at_09 / std::max(1.0, hybrid_at_0));
  std::printf("  vanilla at 0 bounce: %.1f mails/s (paper: ~180)\n\n",
              vanilla_at_0);
  return 0;
}
