// Section 8 "Combined Performance Improvement": all three
// optimizations together versus vanilla postfix, plus a per-switch
// ablation.
//
// Paper:
//   * spam workload (two-month sinkhole trace mixed with the ECN
//     bounce/unfinished ratios): +40% mail throughput, -39% DNSBL
//     queries;
//   * Univ workload: +18% throughput, -20% DNSBL queries (less gain
//     because 33% of mail is legitimate: fewer recipients per session
//     and long-lived static sender IPs).
#include <cstdio>
#include <span>
#include <vector>

#include "bench/bench_util.h"
#include "core/server_stack.h"
#include "mta/drivers.h"
#include "trace/ecn.h"
#include "trace/sinkhole.h"
#include "trace/univ.h"
#include "util/stats.h"

namespace {

using sams::bench::BenchArgs;
using sams::core::StackConfig;
using sams::util::SimTime;
using sams::util::TextTable;

struct RunOutcome {
  double mails_per_sec = 0;
  double dns_queries_per_conn = 0;  // normalized: throughputs differ
};

RunOutcome RunStack(const StackConfig& cfg,
                    std::span<const sams::trace::SessionSpec> sessions,
                    std::span<const sams::util::Ipv4> listed,
                    const BenchArgs& args,
                    const char* metrics_json = nullptr) {
  sams::core::ServerStack stack(cfg, listed);
  const std::size_t prewarm = sessions.size() / 3;
  stack.PrewarmResolver(sessions.subspan(0, prewarm));
  const std::uint64_t dns_before =
      stack.resolver() ? stack.resolver()->stats().dns_queries_sent : 0;
  const auto result = sams::mta::RunClosedLoop(
      stack.machine(), stack.server(), sessions.subspan(prewarm),
      /*concurrency=*/700, SimTime::Seconds(args.quick ? 20 : 40),
      SimTime::Seconds(args.quick ? 60 : 150), stack.resolver());
  RunOutcome outcome;
  outcome.mails_per_sec = result.goodput_mails_per_sec;
  const std::uint64_t dns_delta =
      (stack.resolver() ? stack.resolver()->stats().dns_queries_sent : 0) -
      dns_before;
  outcome.dns_queries_per_conn =
      result.connections_closed > 0
          ? static_cast<double>(dns_delta) /
                static_cast<double>(result.connections_closed)
          : 0.0;
  if (metrics_json != nullptr) {
    std::printf("\n-- stack metrics (%s) --\n%s", stack.Describe().c_str(),
                stack.DumpMetrics().c_str());
    const sams::util::Error err = stack.WriteMetricsJson(metrics_json);
    if (err.ok()) {
      std::printf("metrics snapshot written to %s\n", metrics_json);
    } else {
      std::fprintf(stderr, "metrics snapshot: %s\n", err.ToString().c_str());
    }
  }
  return outcome;
}

// Mixes the ECN bounce/unfinished ratios into the (all-normal)
// sinkhole trace, as §8 does.
std::vector<sams::trace::SessionSpec> MixEcn(
    std::vector<sams::trace::SessionSpec> sessions, double bounce_ratio,
    double unfinished_ratio, std::uint64_t seed) {
  sams::util::Rng rng(seed);
  for (auto& session : sessions) {
    const double u = rng.NextDouble();
    if (u < unfinished_ratio) {
      session.kind = sams::trace::SessionKind::kUnfinished;
      session.n_rcpts = 0;
      session.n_valid_rcpts = 0;
      session.size_bytes = 0;
    } else if (u < unfinished_ratio + bounce_ratio) {
      session.kind = sams::trace::SessionKind::kBounce;
      session.n_rcpts =
          static_cast<std::uint16_t>(rng.UniformInt(1, 5));
      session.n_valid_rcpts = 0;
      session.size_bytes = 0;
    }
  }
  return sessions;
}

void RunWorkload(const char* label,
                 std::span<const sams::trace::SessionSpec> sessions,
                 std::span<const sams::util::Ipv4> listed, double paper_gain,
                 double paper_dns_cut, const BenchArgs& args,
                 const char* metrics_json = nullptr) {
  struct Variant {
    const char* name;
    bool hybrid, mfs, prefix;
  };
  const std::vector<Variant> variants = {
      {"vanilla", false, false, false},
      {"hybrid only", true, false, false},
      {"MFS only", false, true, false},
      {"prefix-DNSBL only", false, false, true},
      {"all three (modified)", true, true, true},
  };

  TextTable table({"variant", "mails/s", "vs vanilla", "DNS msgs/conn"});
  double vanilla_tput = 0;
  double vanilla_dns = 0, modified_dns = 0;
  double modified_tput = 0;
  for (const Variant& variant : variants) {
    if (args.quick && std::string(variant.name).find("only") !=
                          std::string::npos) {
      continue;  // quick mode: endpoints only
    }
    StackConfig cfg;
    cfg.hybrid_concurrency = variant.hybrid;
    cfg.mfs_store = variant.mfs;
    cfg.prefix_dnsbl = variant.prefix;
    cfg.unfinished_hold = SimTime::MillisF(300);
    cfg.seed = args.seed;
    const bool is_modified =
        std::string(variant.name) == "all three (modified)";
    const RunOutcome outcome = RunStack(
        cfg, sessions, listed, args, is_modified ? metrics_json : nullptr);
    if (std::string(variant.name) == "vanilla") {
      vanilla_tput = outcome.mails_per_sec;
      vanilla_dns = outcome.dns_queries_per_conn;
    }
    if (std::string(variant.name) == "all three (modified)") {
      modified_tput = outcome.mails_per_sec;
      modified_dns = outcome.dns_queries_per_conn;
    }
    table.AddRow({variant.name, TextTable::Num(outcome.mails_per_sec, 1),
                  vanilla_tput > 0
                      ? TextTable::Pct(outcome.mails_per_sec / vanilla_tput - 1)
                      : std::string("-"),
                  TextTable::Num(outcome.dns_queries_per_conn, 3)});
  }
  std::printf("\n-- workload: %s --\n", label);
  sams::bench::PrintTable(table);
  std::printf(
      "  throughput gain: +%.1f%% (paper: +%.0f%%)   DNSBL query cut: "
      "-%.1f%% (paper: -%.0f%%)\n",
      100.0 * (modified_tput / vanilla_tput - 1.0), paper_gain,
      100.0 * (1.0 - modified_dns / vanilla_dns), paper_dns_cut);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Section 8 - combined improvement + per-optimization ablation",
      "ICDCS'09 section 8",
      "spam workload: +40% throughput, -39% DNSBL queries; Univ: +18%, -20%");

  // Workload 1: sinkhole trace + ECN bounce mix.
  sams::trace::SinkholeConfig scfg;
  if (args.quick) {
    scfg.n_connections = 30'000;
    scfg.n_ips = 6'000;
    scfg.n_prefixes = 2'700;
  }
  const sams::trace::SinkholeModel sinkhole(scfg);
  const sams::trace::EcnBounceModel ecn;
  const auto spam_sessions =
      MixEcn(sinkhole.sessions(), ecn.MeanBounceRatio(),
             ecn.MeanUnfinishedRatio(), args.seed);
  const auto listed = sinkhole.ListedIps();
  RunWorkload("spam sinkhole + ECN bounce mix", spam_sessions, listed, 40, 39,
              args, "BENCH_sec8_combined.json");

  // Workload 2: the Univ trace.
  sams::trace::UnivConfig ucfg;
  ucfg.n_connections = args.quick ? 60'000 : 150'000;
  ucfg.n_spam_ips = args.quick ? 18'000 : 45'000;
  ucfg.n_ham_ips = args.quick ? 1'000 : 2'500;
  ucfg.seed = args.seed;
  const sams::trace::UnivModel univ(ucfg);
  RunWorkload("Univ departmental trace", univ.sessions(), univ.spam_ips(), 18,
              20, args);
  std::printf("\n");
  return 0;
}
