// §3 "Tuning postfix": throughput of the vanilla (process-per-
// connection) server versus the smtpd process limit, under the Univ
// workload driven by the closed-system client.
//
// Paper: "the throughput of postfix peaks at about 180 mails/sec with
// the process limit configured at 500."
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "fskit/fs_model.h"
#include "mta/drivers.h"
#include "mta/sim_server.h"
#include "trace/univ.h"
#include "util/stats.h"

namespace {

using sams::bench::BenchArgs;
using sams::util::SimTime;
using sams::util::TextTable;

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Section 3 - smtpd process-limit sweep (vanilla postfix model)",
      "ICDCS'09 section 3, 'Tuning postfix'",
      "throughput peaks at ~180 mails/sec with the process limit at ~500");

  // Univ-like workload, scaled for bench runtime.
  sams::trace::UnivConfig tcfg;
  tcfg.n_connections = args.quick ? 20'000 : 60'000;
  tcfg.n_spam_ips = 15'000;
  tcfg.n_ham_ips = 1'500;
  tcfg.seed = args.seed;
  const sams::trace::UnivModel univ(tcfg);

  const std::vector<int> limits = args.quick
                                      ? std::vector<int>{100, 500, 1000}
                                      : std::vector<int>{50,  100, 200, 300,
                                                         400, 500, 600, 700,
                                                         850, 1000};
  const int concurrency = 1'200;
  const SimTime warmup = SimTime::Seconds(args.quick ? 30 : 60);
  const SimTime window = SimTime::Seconds(args.quick ? 60 : 180);

  TextTable table({"process_limit", "mails/sec", "cpu_util", "cs/sec",
                   "switch_overhead"});
  double peak = 0;
  int peak_limit = 0;
  for (int limit : limits) {
    sams::sim::Machine machine;
    sams::fskit::Ext3Model ext3;
    sams::fskit::SimFs fs(machine.disk(), ext3);
    sams::mfs::SimMboxStore store(fs);
    sams::mta::SimServerConfig cfg;
    cfg.process_limit = limit;
    cfg.unfinished_hold = SimTime::Seconds(15);
    sams::mta::SimMailServer server(machine, cfg, store);
    const auto result = sams::mta::RunClosedLoop(
        machine, server, univ.sessions(), concurrency, warmup, window);
    table.AddRow({std::to_string(limit),
                  TextTable::Num(result.goodput_mails_per_sec, 1),
                  TextTable::Pct(result.cpu_utilization),
                  TextTable::Num(static_cast<double>(result.context_switches) /
                                     window.seconds(),
                                 0),
                  TextTable::Pct(result.cpu_switch_overhead)});
    if (result.goodput_mails_per_sec > peak) {
      peak = result.goodput_mails_per_sec;
      peak_limit = limit;
    }
  }
  sams::bench::PrintTable(table);
  std::printf("\n  measured peak: %.1f mails/sec at process limit %d\n", peak,
              peak_limit);
  std::printf("  paper:         ~180 mails/sec at process limit 500\n\n");
  return 0;
}
