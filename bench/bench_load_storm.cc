// Saturation load storm: the native sams::loadgen generator (DESIGN.md
// §13) drives the real fork-after-trust server through a ladder of
// offered-load points — hundreds to thousands of concurrent sessions —
// and records the saturation curve the paper's architecture argument is
// about: sessions/s, ham RCPT-stall tail (p50/p99/p999), shard
// imbalance, and how the server degrades (shed 421s, greylist 450s,
// outright rejects, reply-path backpressure, accept-queue re-drains)
// as offered load passes capacity.
//
// The storm mix follows the Schatzmann flow-level model (PAPERS.md):
// mostly spam (small, pipelined, dictionary RCPT probes, some
// pregreeters), a ham minority (heavier bodies, valid recipients, the
// latency that matters), a trickle of bounces. Override with
// --mix=spam:ham:bounce and --sessions=N.
//
// --smoke gates (SKIPPED on single-core hosts — saturation needs
// client/server parallelism): the top-of-ladder point must sustain at
// least half the bottom point's session rate (no congestion collapse),
// ham p99 RCPT stall stays bounded, and no session died to the
// outbound-buffer cap. Writes BENCH_load_storm.json.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "loadgen/load_storm.h"
#include "loadgen/workload.h"
#include "mfs/store.h"
#include "mta/smtp_server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/stats.h"

namespace {

using sams::loadgen::LoadStorm;
using sams::loadgen::StormConfig;
using sams::loadgen::StormResult;
using sams::mta::Architecture;
using sams::mta::RealServerConfig;
using sams::mta::RecipientDb;
using sams::mta::SmtpServer;

struct Args {
  bool quick = false;
  bool smoke = false;
  std::uint64_t seed = 42;
  std::uint64_t sessions = 0;  // 0 = per-point default
  double mix_spam = 0.6;
  double mix_ham = 0.3;
  double mix_bounce = 0.1;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  // Value flags take either `--flag=value` or `--flag value`.
  const auto value_of = [&](int& i, const char* flag) -> const char* {
    const std::size_t n = std::strlen(flag);
    if (std::strncmp(argv[i], flag, n) != 0) return nullptr;
    if (argv[i][n] == '=') return argv[i] + n + 1;
    if (argv[i][n] == '\0' && i + 1 < argc) return argv[++i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if ((value = value_of(i, "--seed")) != nullptr) {
      args.seed = std::strtoull(value, nullptr, 10);
    } else if ((value = value_of(i, "--sessions")) != nullptr) {
      args.sessions = std::strtoull(value, nullptr, 10);
    } else if ((value = value_of(i, "--mix")) != nullptr) {
      if (std::sscanf(value, "%lf:%lf:%lf", &args.mix_spam, &args.mix_ham,
                      &args.mix_bounce) != 3) {
        std::fprintf(stderr, "bad --mix (want spam:ham:bounce weights)\n");
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

struct PointResult {
  bool failed = false;
  int offered = 0;  // target concurrency
  StormResult storm;
  // Server-side snapshot.
  std::uint64_t delegations = 0;
  std::uint64_t overload_sheds = 0;
  std::uint64_t rep_greylisted = 0;
  std::uint64_t rep_rejects = 0;
  std::uint64_t reply_backpressured = 0;
  std::uint64_t reply_overflow_closed = 0;
  std::uint64_t accept_redrains = 0;
  double shard_imbalance = 1.0;  // max/mean of per-shard accepts
};

PointResult RunPoint(const Args& args, int concurrency,
                     std::uint64_t sessions, int deadline_ms, int point_idx) {
  PointResult point;
  point.offered = concurrency;

  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("sams_bench_loadstorm_" + std::to_string(concurrency)))
          .string();
  std::filesystem::remove_all(root);
  auto store = sams::mfs::MakeMfsStore(root, {});
  if (!store.ok()) {
    point.failed = true;
    return point;
  }
  RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  db.AddMailbox("bob", "dept.test");

  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  cfg.num_shards = static_cast<int>(std::clamp(cores / 2, 1u, 4u));
  cfg.worker_count = 4;
  cfg.recv_timeout_ms = 60'000;
  cfg.send_timeout_ms = 60'000;
  cfg.listen_backlog = 4096;
  cfg.pregreet_delay_ms = 2;
  cfg.reputation.enabled = true;
  // The 421 shed gate: the top rung of the ladder offers more sessions
  // than this, so the overload response is part of the curve.
  cfg.max_inflight_sessions = 6000;
  // Every client connects from 127.0.0.1; without this seam the whole
  // storm lands in ONE reputation /24 bucket and the first spam wave
  // poisons it for all subsequent ham. Synthesize a fresh source
  // address per accept — a botnet-wide spread of /24s — so verdicts
  // ride on each session's own dialog evidence.
  auto ip_seq = std::make_shared<std::atomic<std::uint32_t>>(0);
  cfg.dnsbl_ip_mapper = [ip_seq](const std::string&) {
    const std::uint32_t k = ip_seq->fetch_add(1, std::memory_order_relaxed);
    return sams::util::Ipv4(10, static_cast<std::uint8_t>(64 + k % 128),
                            static_cast<std::uint8_t>((k / 128) % 256),
                            static_cast<std::uint8_t>(2 + (k / 32768) % 250));
  };

  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  if (!port.ok()) {
    point.failed = true;
    return point;
  }

  StormConfig storm;
  storm.port = *port;
  storm.concurrency = concurrency;
  storm.total_sessions = sessions;
  storm.seed = args.seed + static_cast<std::uint64_t>(point_idx);
  storm.deadline_ms = deadline_ms;
  storm.connect_timeout_ms = 30'000;
  storm.reply_timeout_ms = 60'000;
  storm.workload.spam_weight = args.mix_spam;
  storm.workload.ham_weight = args.mix_ham;
  storm.workload.bounce_weight = args.mix_bounce;
  storm.workload.valid_rcpts = {"alice@dept.test", "bob@dept.test"};
  storm.workload.slow_frac = 0.05;
  storm.workload.slow_gap_ns = 5'000'000;  // 5 ms inter-command gaps

  LoadStorm gen(std::move(storm));
  auto result = gen.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "  storm failed: %s\n",
                 result.error().ToString().c_str());
    server.Stop();
    std::filesystem::remove_all(root);
    point.failed = true;
    return point;
  }
  point.storm = std::move(*result);

  const auto& stats = server.stats();
  point.delegations = stats.delegations.load();
  point.overload_sheds = stats.overload_sheds.load();
  point.rep_greylisted = stats.rep_greylisted.load();
  point.rep_rejects = stats.rep_rejects.load();
  point.reply_backpressured = stats.reply_backpressured.load();
  point.reply_overflow_closed = stats.reply_overflow_closed.load();
  point.accept_redrains = stats.accept_redrains.load();
  const std::vector<std::uint64_t> per_shard = server.ShardAccepted();
  if (!per_shard.empty()) {
    std::uint64_t total = 0, peak = 0;
    for (const std::uint64_t n : per_shard) {
      total += n;
      peak = std::max(peak, n);
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(per_shard.size());
    point.shard_imbalance =
        mean > 0 ? static_cast<double>(peak) / mean : 1.0;
  }
  server.Stop();
  std::filesystem::remove_all(root);
  return point;
}

double Rate(std::uint64_t part, std::uint64_t whole) {
  return whole > 0 ? static_cast<double>(part) / static_cast<double>(whole)
                   : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (args.smoke && std::thread::hardware_concurrency() <= 1) {
    std::printf("bench_load_storm: SKIPPED (single core — saturation needs "
                "client/server parallelism)\n");
    return 0;
  }

  sams::bench::PrintHeader(
      "Load storm: saturation curve of the fork-after-trust server",
      "DESIGN.md section 13; paper sections 3 and 5 under storm load",
      "native epoll load generator, Schatzmann flow-level traffic mix");

  // Offered-load ladder: target concurrency per point. Clamped to the
  // fd budget — generator and server share one process, so a session
  // costs two descriptors.
  std::vector<int> ladder = args.smoke   ? std::vector<int>{128, 384, 768, 1152}
                            : std::vector<int>{512, 2048, 5000, 7500};
  struct rlimit nofile {};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0) {
    const int headroom =
        static_cast<int>((nofile.rlim_cur - 1024) / 2);
    for (int& rung : ladder) {
      if (rung > headroom) {
        std::printf("  NOTE: clamping offered load %d -> %d "
                    "(RLIMIT_NOFILE=%llu, 2 fds/session in-process)\n",
                    rung, headroom,
                    static_cast<unsigned long long>(nofile.rlim_cur));
        rung = headroom;
      }
    }
  }
  std::printf("  mix spam:ham:bounce = %.2f:%.2f:%.2f, seed %llu\n\n",
              args.mix_spam, args.mix_ham, args.mix_bounce,
              static_cast<unsigned long long>(args.seed));

  sams::obs::Registry summary;
  sams::util::TextTable table(
      {"offered", "sessions/s", "completed", "delivered", "shed", "grey 450",
       "rcpt 554", "ham p99 ms", "ham p999 ms", "imbalance", "errors"});
  std::vector<PointResult> points;
  bool any_failed = false;
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const int concurrency = ladder[i];
    std::uint64_t sessions = args.sessions;
    if (sessions == 0) {
      sessions = static_cast<std::uint64_t>(concurrency) *
                 (args.smoke || args.quick ? 2 : 4);
      sessions = std::min<std::uint64_t>(sessions, 12'000);
    }
    const int deadline_ms = args.smoke || args.quick ? 60'000 : 180'000;
    PointResult point = RunPoint(args, concurrency, sessions, deadline_ms,
                                 static_cast<int>(i));
    if (point.failed) {
      any_failed = true;
      std::fprintf(stderr, "  point %d FAILED\n", concurrency);
      continue;
    }
    const StormResult& storm = point.storm;
    std::uint64_t transport_errors = 0;
    for (const auto& [name, n] : storm.errors) transport_errors += n;
    table.AddRow(
        {std::to_string(point.offered),
         sams::util::TextTable::Num(storm.sessions_per_s, 1),
         std::to_string(storm.completed) + "/" + std::to_string(storm.launched),
         std::to_string(storm.delivered), std::to_string(storm.shed),
         std::to_string(storm.greylist_450),
         std::to_string(storm.rcpt_rejected),
         sams::util::TextTable::Num(storm.ham_rcpt_stall_ms.Percentile(99), 2),
         sams::util::TextTable::Num(storm.ham_rcpt_stall_ms.Percentile(99.9),
                                    2),
         sams::util::TextTable::Num(point.shard_imbalance, 2),
         std::to_string(transport_errors)});
    const sams::obs::Labels labels = {
        {"offered", std::to_string(point.offered)}};
    summary
        .GetGauge("bench_load_storm_sessions_per_s",
                  "completed sessions per second at this offered load", labels)
        .Set(storm.sessions_per_s);
    summary
        .GetGauge("bench_load_storm_completed",
                  "sessions that ran their full script", labels)
        .Set(static_cast<double>(storm.completed));
    summary
        .GetGauge("bench_load_storm_launched", "sessions launched", labels)
        .Set(static_cast<double>(storm.launched));
    summary
        .GetGauge("bench_load_storm_peak_active",
                  "peak concurrently open sessions", labels)
        .Set(static_cast<double>(storm.peak_active));
    summary
        .GetGauge("bench_load_storm_shed_rate",
                  "sessions answered 421 (overload/greylist shed)", labels)
        .Set(Rate(storm.shed, storm.launched));
    summary
        .GetGauge("bench_load_storm_greylist_rate",
                  "RCPTs deferred 450 by the reputation gate", labels)
        .Set(Rate(storm.greylist_450,
                  storm.greylist_450 + storm.rcpt_250 + storm.rcpt_rejected));
    summary
        .GetGauge("bench_load_storm_reject_rate",
                  "RCPTs rejected 5xx", labels)
        .Set(Rate(storm.rcpt_rejected,
                  storm.greylist_450 + storm.rcpt_250 + storm.rcpt_rejected));
    summary
        .GetGauge("bench_load_storm_ham_p50_rcpt_stall_ms",
                  "median ham RCPT->reply stall", labels)
        .Set(storm.ham_rcpt_stall_ms.Percentile(50));
    summary
        .GetGauge("bench_load_storm_ham_p99_rcpt_stall_ms",
                  "p99 ham RCPT->reply stall", labels)
        .Set(storm.ham_rcpt_stall_ms.Percentile(99));
    summary
        .GetGauge("bench_load_storm_ham_p999_rcpt_stall_ms",
                  "p99.9 ham RCPT->reply stall", labels)
        .Set(storm.ham_rcpt_stall_ms.Percentile(99.9));
    summary
        .GetGauge("bench_load_storm_shard_imbalance",
                  "per-shard accepted sessions, max/mean (1.0 = even)",
                  labels)
        .Set(point.shard_imbalance);
    summary
        .GetGauge("bench_load_storm_transport_errors",
                  "connect/read/write failures, all errnos", labels)
        .Set(static_cast<double>(transport_errors));
    summary
        .GetGauge("bench_load_storm_reply_backpressure",
                  "server reply sends that hit EAGAIN and buffered", labels)
        .Set(static_cast<double>(point.reply_backpressured));
    summary
        .GetGauge("bench_load_storm_accept_redrains",
                  "EMFILE-stalled accept queues re-drained", labels)
        .Set(static_cast<double>(point.accept_redrains));
    summary
        .GetGauge("bench_load_storm_delegations",
                  "sessions handed to an smtpd worker", labels)
        .Set(static_cast<double>(point.delegations));
    points.push_back(std::move(point));
  }
  sams::bench::PrintTable(table);
  summary
      .GetGauge("bench_load_storm_points",
                "offered-load points in this run's saturation curve")
      .Set(static_cast<double>(points.size()));

  const char* json_path = "BENCH_load_storm.json";
  const sams::util::Error err = sams::obs::WriteJsonSnapshot(summary, json_path);
  if (err.ok()) {
    std::printf("\n  summary written to %s\n", json_path);
  } else {
    std::fprintf(stderr, "\n  summary write failed: %s\n",
                 err.ToString().c_str());
  }

  if (points.empty() || any_failed) return 1;
  const PointResult& low = points.front();
  const PointResult& high = points.back();
  std::printf("  saturation: %.0f sessions/s at offered %d (peak %d "
              "concurrent) vs %.0f at offered %d\n\n",
              high.storm.sessions_per_s, high.offered,
              high.storm.peak_active, low.storm.sessions_per_s, low.offered);
  if (args.smoke) {
    // No congestion collapse: past saturation the server sheds and
    // keeps serving, so the top rung may not fall below half the
    // bottom rung's (unsaturated) session rate.
    const bool rate_ok =
        high.storm.sessions_per_s >= 0.5 * low.storm.sessions_per_s;
    bool stall_ok = true;
    bool overflow_ok = true;
    for (const PointResult& point : points) {
      if (point.storm.ham_rcpt_stall_ms.count() > 0 &&
          point.storm.ham_rcpt_stall_ms.Percentile(99) > 2000.0) {
        stall_ok = false;
      }
      if (point.storm.rcpt_250 + point.storm.greylist_450 == 0) {
        stall_ok = false;  // nothing reached the gate: not a storm
      }
      if (point.reply_overflow_closed > 0) overflow_ok = false;
    }
    std::printf("  gate (no congestion collapse at saturation): %s\n",
                rate_ok ? "pass" : "NO - REGRESSION");
    std::printf("  gate (ham p99 RCPT stall bounded, gate reached): %s\n",
                stall_ok ? "pass" : "NO - REGRESSION");
    std::printf("  gate (no outbound-buffer overflow closes): %s\n\n",
                overflow_ok ? "pass" : "NO - REGRESSION");
    return rate_ok && stall_ok && overflow_ok ? 0 : 1;
  }
  return 0;
}
