// Ablation bench for the fork-after-trust design choices DESIGN.md
// calls out (§5.3):
//
//   1. worker pool size — how many smtpd workers the hybrid needs once
//      the master absorbs all handshakes (the paper fixes vanilla at
//      its 500-process optimum; the hybrid's pool only runs DATA+
//      delivery);
//   2. vector-send batching depth — the per-worker task queue bound
//      (~28 tasks per 64 KiB socket buffer in the paper);
//   3. master event cost — sensitivity of the whole architecture to
//      the event-loop dispatch price (the gap between select(2) on
//      hundreds of fds and epoll).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "fskit/fs_model.h"
#include "mta/drivers.h"
#include "mta/sim_server.h"
#include "trace/synthetic.h"
#include "util/stats.h"

namespace {

using sams::bench::BenchArgs;
using sams::util::SimTime;
using sams::util::TextTable;

double RunHybrid(const sams::mta::SimServerConfig& cfg, const BenchArgs& args,
                 double bounce_ratio = 0.3) {
  sams::trace::BounceSweepConfig tcfg;
  tcfg.n_sessions = args.quick ? 8'000 : 20'000;
  tcfg.bounce_ratio = bounce_ratio;
  tcfg.seed = args.seed;
  const auto sessions = sams::trace::MakeBounceSweepTrace(tcfg);

  sams::sim::Machine machine;
  sams::fskit::Ext3Model ext3;
  sams::fskit::SimFs fs(machine.disk(), ext3);
  sams::mfs::SimMboxStore store(fs);
  sams::mta::SimMailServer server(machine, cfg, store);
  return sams::mta::RunClosedLoop(machine, server, sessions, 700,
                                  SimTime::Seconds(args.quick ? 15 : 30),
                                  SimTime::Seconds(args.quick ? 40 : 90))
      .goodput_mails_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Ablation - fork-after-trust design choices",
      "ICDCS'09 section 5.3 (design discussion)",
      "worker pool size, vector-send batching depth, master event cost");

  // 1. Worker pool size at bounce ratio 0.3.
  {
    TextTable table({"hybrid workers", "mails/s"});
    for (int workers : {10, 25, 50, 100, 200, 400}) {
      sams::mta::SimServerConfig cfg;
      cfg.hybrid = true;
      cfg.process_limit = workers;
      table.AddRow({std::to_string(workers),
                    TextTable::Num(RunHybrid(cfg, args), 1)});
    }
    std::printf("\n-- worker pool size (bounce ratio 0.3) --\n");
    sams::bench::PrintTable(table);
    std::printf(
        "  the hybrid needs far fewer processes than vanilla's 500: the\n"
        "  pool only covers DATA+delivery residency, not handshakes.\n");
  }

  // 2. Vector-send batching depth.
  {
    TextTable table({"queue/worker", "mails/s"});
    for (int depth : {1, 4, 28, 256}) {
      sams::mta::SimServerConfig cfg;
      cfg.hybrid = true;
      cfg.process_limit = 50;  // scarce workers so queuing matters
      cfg.delegate_queue_per_worker = depth;
      table.AddRow({std::to_string(depth),
                    TextTable::Num(RunHybrid(cfg, args, 0.0), 1)});
    }
    std::printf("\n-- vector-send batching depth (50 workers, no bounces) --\n");
    sams::bench::PrintTable(table);
    std::printf(
        "  paper estimate: ~28 tasks fit one 64 KiB worker socket (§5.3);\n"
        "  the natural-throttle bound matters only under worker scarcity.\n");
  }

  // 3. Master event-cost sensitivity at high bounce ratio.
  {
    TextTable table({"master event cost", "mails/s at bounce 0.9"});
    for (double us : {2.0, 6.0, 20.0, 60.0, 100.0}) {
      sams::mta::SimServerConfig cfg;
      cfg.hybrid = true;
      cfg.process_limit = 200;
      cfg.costs.master_event = SimTime::MicrosF(us);
      table.AddRow({TextTable::Num(us, 0) + " us",
                    TextTable::Num(RunHybrid(cfg, args, 0.9), 1)});
    }
    std::printf("\n-- master event cost (bounce ratio 0.9) --\n");
    sams::bench::PrintTable(table);
    std::printf(
        "  at 100 us/event the master costs as much as a dedicated smtpd\n"
        "  command cycle and the fork-after-trust advantage evaporates —\n"
        "  the architecture's win hinges on a cheap event loop (§5.1).\n\n");
  }
  return 0;
}
