// Reputation storm bench: worker forks avoided when the pre-trust
// reputation gate (DESIGN.md §12) fronts a hostile client storm, vs
// the binary DNSBL-only RCPT gate.
//
// The storm is ~70% hostile sessions from a handful of /24s — bots
// that pipeline the whole HELO/MAIL/RCPT dialog in one segment, greet
// with a bare-IP HELO, aim at a VALID recipient, and never retry.
// Only one hostile /24 is DNSBL-listed; the rest model fresh botnet
// addresses no blacklist has seen yet, which is exactly the traffic
// the DNSBL-only gate forks a worker for. The other ~30% is ham: a
// paced, well-formed dialog from distinct clean /24s, measuring the
// stall between RCPT and its reply. Three modes:
//
//   dnsbl-only     — reputation off: unlisted hostile sessions reach
//                    RCPT 250 and cost a worker handoff each.
//   reputation     — weighted gate: anomaly score lands hostile
//                    sessions in the greylist band (450, no handoff);
//                    /24 history escalates repeat offenders to 554.
//   rep-store-dark — reputation with rep.store.error armed: the
//                    history store is dark, every verdict is degraded
//                    (dialog evidence only) and nothing is cached.
//                    Fail-open means ham goodput must not move.
//
// --smoke gates: reputation cuts worker handoffs >= 30% vs dnsbl-only
// at no ham p99 RCPT-stall cost, and store-dark still accepts every
// ham session (with degraded evaluations actually observed). On a
// single-core machine the gate prints SKIPPED and passes: the storm
// needs client/server parallelism to mean anything.
// Writes BENCH_reputation_storm.json.
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "dnsbl/blacklist_db.h"
#include "dnsbl/udp_daemon.h"
#include "fault/injector.h"
#include "mta/smtp_server.h"
#include "net/tcp.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "rep/reputation.h"
#include "util/stats.h"

namespace {

using sams::mta::Architecture;
using sams::mta::RealServerConfig;
using sams::mta::RecipientDb;
using sams::mta::SmtpServer;

struct Args {
  bool quick = false;
  bool smoke = false;
  std::uint64_t seed = 42;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

bool SendLine(int fd, const std::string& line) {
  return ::send(fd, line.data(), line.size(), MSG_NOSIGNAL) ==
         static_cast<ssize_t>(line.size());
}

// Reads one CRLF-terminated reply line (all server replies here are
// single-line).
bool ReadReply(int fd, std::string& line) {
  line.clear();
  char ch = 0;
  while (line.size() < 512) {
    const ssize_t n = ::recv(fd, &ch, 1, 0);
    if (n <= 0) return false;
    if (ch == '\n') return true;
    if (ch != '\r') line.push_back(ch);
  }
  return false;
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// The dnsbl_ip_mapper seam assigns the synthesized client IP at accept
// time, but which /24 a connection should pose as depends on what the
// CLIENT is about to do. Pairing is made exact by serializing connect
// → banner: the client parks its intended IP here, connects, and only
// releases the lock after the banner proves accept (and the mapping
// call) happened. Dialogs still overlap freely after the banner.
struct IpPairing {
  std::mutex mu;
  std::atomic<std::uint32_t> next_ip{0};
};

int RcptCode(const std::string& reply) {
  return reply.size() >= 3 ? std::atoi(reply.substr(0, 3).c_str()) : 0;
}

// A bot session: blast the whole dialog in one segment (pipelined +
// bare-IP HELO — two soft anomalies, enough for the greylist band),
// read the three replies, record the RCPT verdict, hang up without
// QUIT. Returns the RCPT reply code, or 0 on transport failure.
int RunHostileDialog(std::uint16_t port, IpPairing& pairing,
                     sams::util::Ipv4 pose_as) {
  std::unique_lock<std::mutex> lk(pairing.mu);
  pairing.next_ip.store(pose_as.value(), std::memory_order_relaxed);
  auto fd = sams::net::TcpConnect("127.0.0.1", port);
  if (!fd.ok()) return 0;
  if (!sams::net::SetRecvTimeout(fd->get(), 10'000).ok()) return 0;
  std::string reply;
  if (!ReadReply(fd->get(), reply)) return 0;  // 220 banner
  lk.unlock();

  const std::string blast = "HELO " + pose_as.ToString() +
                            "\r\nMAIL FROM:<promo@storm.example>\r\n"
                            "RCPT TO:<alice@dept.test>\r\n";
  if (!SendLine(fd->get(), blast)) return 0;
  if (!ReadReply(fd->get(), reply)) return 0;  // HELO
  if (!ReadReply(fd->get(), reply)) return 0;  // MAIL
  if (!ReadReply(fd->get(), reply)) return 0;  // RCPT verdict
  return RcptCode(reply);
}

// A ham session: paced, well-formed dialog measuring the RCPT stall.
// Returns the RCPT reply code (0 on transport failure).
int RunHamDialog(std::uint16_t port, IpPairing& pairing,
                 sams::util::Ipv4 pose_as, int think_ms,
                 double& rcpt_stall_ms) {
  std::unique_lock<std::mutex> lk(pairing.mu);
  pairing.next_ip.store(pose_as.value(), std::memory_order_relaxed);
  auto fd = sams::net::TcpConnect("127.0.0.1", port);
  if (!fd.ok()) return 0;
  if (!sams::net::SetRecvTimeout(fd->get(), 10'000).ok()) return 0;
  std::string reply;
  if (!ReadReply(fd->get(), reply)) return 0;  // 220 banner
  lk.unlock();

  const auto think = std::chrono::milliseconds(think_ms);
  std::this_thread::sleep_for(think);
  if (!SendLine(fd->get(), "HELO relay.ham.example\r\n")) return 0;
  if (!ReadReply(fd->get(), reply)) return 0;
  std::this_thread::sleep_for(think);
  if (!SendLine(fd->get(), "MAIL FROM:<news@ham.example>\r\n")) return 0;
  if (!ReadReply(fd->get(), reply)) return 0;
  std::this_thread::sleep_for(think);
  const auto rcpt_time = std::chrono::steady_clock::now();
  if (!SendLine(fd->get(), "RCPT TO:<alice@dept.test>\r\n")) return 0;
  if (!ReadReply(fd->get(), reply)) return 0;
  rcpt_stall_ms = MillisSince(rcpt_time);
  const int code = RcptCode(reply);
  (void)SendLine(fd->get(), "QUIT\r\n");
  (void)ReadReply(fd->get(), reply);
  return code;
}

enum class Mode { kDnsblOnly, kReputation, kStoreDark };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kDnsblOnly: return "dnsbl-only";
    case Mode::kReputation: return "reputation";
    case Mode::kStoreDark: return "rep-store-dark";
  }
  return "?";
}

struct RunResult {
  bool failed = false;
  std::uint64_t handoffs = 0;      // delegations = worker forks paid
  std::uint64_t hostile_sessions = 0;
  std::uint64_t hostile_250 = 0;
  std::uint64_t hostile_450 = 0;
  std::uint64_t hostile_554 = 0;
  std::uint64_t ham_sessions = 0;
  std::uint64_t ham_accepted = 0;
  double ham_p50_stall_ms = 0;
  double ham_p99_stall_ms = 0;
  std::uint64_t degraded_evals = 0;  // store-dark verdicts
  std::uint64_t history_size = 0;    // /24 buckets cached at the end
  double sessions_per_sec = 0;
};

RunResult RunOne(Mode mode, std::uint16_t dns_port, const std::string& zone,
                 int sessions_per_thread, int client_threads, int think_ms,
                 std::uint64_t seed) {
  RunResult result;
  const std::string root =
      (std::filesystem::temp_directory_path() /
       (std::string("sams_bench_repstorm_") + ModeName(mode)))
          .string();
  std::filesystem::remove_all(root);
  auto store = sams::mfs::MakeMfsStore(root, {});
  if (!store.ok()) {
    result.failed = true;
    return result;
  }
  RecipientDb db;
  db.AddMailbox("alice", "dept.test");

  auto pairing = std::make_shared<IpPairing>();
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  cfg.num_shards = 2;
  cfg.recv_timeout_ms = 10'000;
  cfg.dnsbl.enabled = true;
  cfg.dnsbl.zones = {{zone, dns_port}};
  cfg.dnsbl_overlap = true;
  cfg.dnsbl_ip_mapper = [pairing](const std::string&) {
    return sams::util::Ipv4(pairing->next_ip.load(std::memory_order_relaxed));
  };
  if (mode != Mode::kDnsblOnly) {
    cfg.reputation.enabled = true;  // stock thresholds: 2.0 / 4.0
  }
  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  if (!port.ok()) {
    result.failed = true;
    return result;
  }

  // Store-dark mode runs the whole storm with the /24 history store
  // erroring out: every evaluation must degrade to dialog evidence
  // and cache nothing (fail-open, DESIGN.md §12).
  std::unique_ptr<sams::fault::ScopedArm> arm;
  if (mode == Mode::kStoreDark) {
    arm = std::make_unique<sams::fault::ScopedArm>(seed);
    sams::fault::Injector::Global().Set("rep.store.error", {});
  }

  std::vector<std::vector<double>> stalls(
      static_cast<std::size_t>(client_threads));
  std::atomic<std::uint64_t> hostile_sessions{0}, hostile_250{0},
      hostile_450{0}, hostile_554{0}, ham_sessions{0}, ham_accepted{0};
  std::atomic<std::uint32_t> hostile_seq{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < sessions_per_thread; ++i) {
        if (i % 10 < 7) {
          // Hostile: a handful of /24s, bots rotating last octets.
          // Only net 10.66.0.0/24 is DNSBL-listed.
          const std::uint32_t k =
              hostile_seq.fetch_add(1, std::memory_order_relaxed);
          const sams::util::Ipv4 ip(10, 66, static_cast<std::uint8_t>(k % 4),
                                    static_cast<std::uint8_t>(2 + (k / 4) % 200));
          hostile_sessions.fetch_add(1, std::memory_order_relaxed);
          switch (RunHostileDialog(*port, *pairing, ip)) {
            case 250: hostile_250.fetch_add(1, std::memory_order_relaxed); break;
            case 450: hostile_450.fetch_add(1, std::memory_order_relaxed); break;
            case 554: hostile_554.fetch_add(1, std::memory_order_relaxed); break;
            default: break;
          }
        } else {
          // Ham: every session its own clean /24.
          const sams::util::Ipv4 ip(10, static_cast<std::uint8_t>(150 + t),
                                    static_cast<std::uint8_t>(i), 9);
          ham_sessions.fetch_add(1, std::memory_order_relaxed);
          double stall = 0;
          if (RunHamDialog(*port, *pairing, ip, think_ms, stall) == 250) {
            ham_accepted.fetch_add(1, std::memory_order_relaxed);
            stalls[static_cast<std::size_t>(t)].push_back(stall);
          }
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  const double seconds = MillisSince(start) / 1000.0;

  result.handoffs = server.stats().delegations.load();
  if (const sams::rep::ReputationEngine* engine = server.reputation_engine()) {
    result.degraded_evals = engine->stats().degraded.load();
    result.history_size = engine->history_size();
  }
  server.Stop();
  arm.reset();
  std::filesystem::remove_all(root);

  result.hostile_sessions = hostile_sessions.load();
  result.hostile_250 = hostile_250.load();
  result.hostile_450 = hostile_450.load();
  result.hostile_554 = hostile_554.load();
  result.ham_sessions = ham_sessions.load();
  result.ham_accepted = ham_accepted.load();
  std::vector<double> all_stalls;
  for (auto& v : stalls) all_stalls.insert(all_stalls.end(), v.begin(), v.end());
  if (all_stalls.empty()) {
    result.failed = true;
    return result;
  }
  std::sort(all_stalls.begin(), all_stalls.end());
  auto pct = [&all_stalls](double p) {
    return all_stalls[std::min(
        all_stalls.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(all_stalls.size())))];
  };
  result.ham_p50_stall_ms = pct(0.50);
  result.ham_p99_stall_ms = pct(0.99);
  const std::uint64_t total = result.hostile_sessions + result.ham_sessions;
  result.sessions_per_sec =
      seconds > 0 ? static_cast<double>(total) / seconds : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (args.smoke && std::thread::hardware_concurrency() <= 1) {
    std::printf("bench_reputation_storm: SKIPPED (single core — the storm "
                "needs client/server parallelism)\n");
    return 0;
  }
  const int dns_delay_ms = 5;
  const int think_ms = 5;
  const int client_threads = 4;
  const int sessions_per_thread = args.smoke ? 10 : (args.quick ? 16 : 30);

  sams::bench::PrintHeader(
      "Reputation storm: weighted pre-trust gate vs DNSBL-only, real server",
      "DESIGN.md section 12; paper section 4.3 generalized",
      "scoring + greylist sheds unlisted hostile clients before any fork");
  std::printf("  storm mix: ~70%% hostile (1 of 4 /24s DNSBL-listed), "
              "~30%% ham; DNS RTT %d ms\n\n", dns_delay_ms);

  // One hostile /24 is listed; the other three model fresh botnet
  // space the blacklist has not caught up with.
  sams::dnsbl::BlacklistDb db;
  for (int octet = 2; octet < 252; ++octet) {
    db.Add(sams::util::Ipv4(10, 66, 0, static_cast<std::uint8_t>(octet)));
  }
  sams::dnsbl::UdpDnsblDaemon daemon("storm.bl.test", db,
                                     /*ttl_seconds=*/3600, dns_delay_ms);
  auto dns_port = daemon.Start();
  if (!dns_port.ok()) {
    std::fprintf(stderr, "daemon start: %s\n",
                 dns_port.error().ToString().c_str());
    return 1;
  }

  sams::obs::Registry summary;
  sams::util::TextTable table({"mode", "worker handoffs", "hostile 450",
                               "hostile 554", "hostile 250", "ham accepted",
                               "ham p99 stall ms"});
  RunResult by_mode[3];
  bool any_failed = false;
  for (const Mode mode :
       {Mode::kDnsblOnly, Mode::kReputation, Mode::kStoreDark}) {
    RunResult r = RunOne(mode, *dns_port, daemon.zone(), sessions_per_thread,
                         client_threads, think_ms, args.seed);
    by_mode[static_cast<int>(mode)] = r;
    if (r.failed) {
      any_failed = true;
      std::fprintf(stderr, "  mode %s FAILED\n", ModeName(mode));
      continue;
    }
    table.AddRow({ModeName(mode), std::to_string(r.handoffs),
                  std::to_string(r.hostile_450), std::to_string(r.hostile_554),
                  std::to_string(r.hostile_250),
                  std::to_string(r.ham_accepted) + "/" +
                      std::to_string(r.ham_sessions),
                  sams::util::TextTable::Num(r.ham_p99_stall_ms, 2)});
    const sams::obs::Labels labels = {{"mode", ModeName(mode)}};
    summary
        .GetGauge("bench_reputation_storm_worker_handoffs",
                  "sessions delegated to an smtpd worker (fork cost paid)",
                  labels)
        .Set(static_cast<double>(r.handoffs));
    summary
        .GetGauge("bench_reputation_storm_hostile_450_rate",
                  "hostile RCPTs greylist-deferred", labels)
        .Set(r.hostile_sessions > 0
                 ? static_cast<double>(r.hostile_450) /
                       static_cast<double>(r.hostile_sessions)
                 : 0);
    summary
        .GetGauge("bench_reputation_storm_hostile_554_rate",
                  "hostile RCPTs rejected outright", labels)
        .Set(r.hostile_sessions > 0
                 ? static_cast<double>(r.hostile_554) /
                       static_cast<double>(r.hostile_sessions)
                 : 0);
    summary
        .GetGauge("bench_reputation_storm_ham_accept_rate",
                  "ham RCPTs answered 250", labels)
        .Set(r.ham_sessions > 0 ? static_cast<double>(r.ham_accepted) /
                                      static_cast<double>(r.ham_sessions)
                                : 0);
    summary
        .GetGauge("bench_reputation_storm_ham_p99_rcpt_stall_ms",
                  "p99 stall between ham RCPT and its reply", labels)
        .Set(r.ham_p99_stall_ms);
    summary
        .GetGauge("bench_reputation_storm_degraded_evals",
                  "reputation evaluations served with the store dark", labels)
        .Set(static_cast<double>(r.degraded_evals));
    summary
        .GetGauge("bench_reputation_storm_history_size",
                  "/24 buckets cached when the run ended", labels)
        .Set(static_cast<double>(r.history_size));
  }
  daemon.Stop();
  sams::bench::PrintTable(table);

  const RunResult& baseline = by_mode[static_cast<int>(Mode::kDnsblOnly)];
  const RunResult& rep = by_mode[static_cast<int>(Mode::kReputation)];
  const RunResult& dark = by_mode[static_cast<int>(Mode::kStoreDark)];
  const double fork_reduction =
      baseline.handoffs > 0
          ? 1.0 - static_cast<double>(rep.handoffs) /
                      static_cast<double>(baseline.handoffs)
          : 0.0;
  const double ham_p99_delta_ms =
      rep.ham_p99_stall_ms - baseline.ham_p99_stall_ms;
  summary
      .GetGauge("bench_reputation_storm_fork_reduction",
                "share of worker handoffs the reputation gate avoided")
      .Set(fork_reduction);
  summary
      .GetGauge("bench_reputation_storm_ham_p99_delta_ms",
                "reputation ham p99 RCPT stall minus the dnsbl-only baseline")
      .Set(ham_p99_delta_ms);

  const char* json_path = "BENCH_reputation_storm.json";
  const sams::util::Error err = sams::obs::WriteJsonSnapshot(summary, json_path);
  if (err.ok()) {
    std::printf("\n  summary written to %s\n", json_path);
  } else {
    std::fprintf(stderr, "\n  summary write failed: %s\n",
                 err.ToString().c_str());
  }

  std::printf("  reputation avoided %.0f%% of worker handoffs; ham p99 RCPT "
              "stall moved %+.2f ms; store-dark served %llu degraded "
              "evaluations and cached %llu buckets\n",
              fork_reduction * 100.0, ham_p99_delta_ms,
              static_cast<unsigned long long>(dark.degraded_evals),
              static_cast<unsigned long long>(dark.history_size));
  if (any_failed) return 1;
  if (args.smoke) {
    const bool fork_ok = fork_reduction >= 0.30;
    const bool stall_ok = ham_p99_delta_ms <= 15.0;
    const bool dark_ok = dark.ham_accepted == dark.ham_sessions &&
                         dark.degraded_evals > 0 && dark.history_size == 0;
    std::printf("  gate (>= 30%% fewer worker handoffs): %s\n",
                fork_ok ? "pass" : "NO - REGRESSION");
    std::printf("  gate (ham p99 stall within 15 ms of baseline): %s\n",
                stall_ok ? "pass" : "NO - REGRESSION");
    std::printf("  gate (store-dark fail-open: all ham accepted, degraded "
                "verdicts uncached): %s\n\n",
                dark_ok ? "pass" : "NO - REGRESSION");
    return fork_ok && stall_ok && dark_ok ? 0 : 1;
  }
  std::printf("\n");
  return 0;
}
