// Shard-scaling bench: goodput of the REAL fork-after-trust server as
// the pre-trust master is sharded across reactors (DESIGN.md §9).
//
// Workload: concurrent clients over loopback TCP, 70% spam sessions
// (every RCPT bounces, the dialog dies 554 inside a shard without ever
// touching an smtpd worker) and 30% ham (delivered into MFS via the
// worker pool). This is the paper's traffic shape — the overwhelming
// majority of sessions are cheap rejections — so the pre-trust stage
// is the first to saturate a core and sharding it is what scales.
//
// The claim under test: on a multi-core host, 2 shards sustain >= 1.5x
// the sessions/sec of the single-master baseline (num_shards=1, which
// IS the paper's Figure 8 configuration, preserved bit-for-bit).
//
// --smoke runs shards {1,2} only and exits nonzero when the >=1.5x
// gate fails — but only on a >= 2-core runner; a 1-core builder cannot
// scale by adding reactors to the same core, so the gate is reported
// as SKIPPED and the exit stays 0.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mta/smtp_server.h"
#include "net/smtp_client.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using sams::mta::Architecture;
using sams::mta::RealServerConfig;
using sams::mta::RecipientDb;
using sams::mta::SmtpServer;
using sams::smtp::ClientOutcome;
using sams::smtp::MailJob;
using sams::smtp::Path;

struct Args {
  bool quick = false;
  bool smoke = false;
  std::uint64_t seed = 42;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

struct RunResult {
  double sessions_per_sec = 0;
  double mails_per_sec = 0;
  double spam_per_sec = 0;
  std::uint64_t sessions = 0;
  std::uint64_t spam_rejected = 0;
  std::uint64_t mails = 0;
  bool fallback = false;
  bool failed = false;
};

MailJob MakeJob(const std::string& rcpt, std::string body) {
  MailJob job;
  job.helo = "bench.client";
  job.mail_from = *Path::Parse("<load@bench.test>");
  job.rcpts.push_back(*Path::Parse("<" + rcpt + ">"));
  job.body = std::move(body);
  return job;
}

RunResult RunOne(int num_shards, int client_threads, int duration_ms,
                 std::uint64_t seed) {
  RunResult result;
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("sams_bench_shard_" + std::to_string(num_shards)))
          .string();
  std::filesystem::remove_all(root);
  auto store = sams::mfs::MakeMfsStore(root, {});
  if (!store.ok()) {
    result.failed = true;
    return result;
  }
  RecipientDb db;
  for (const char* user : {"alice", "bob", "carol", "dave"}) {
    db.AddMailbox(user, "dept.test");
  }
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  cfg.num_shards = num_shards;
  cfg.recv_timeout_ms = 5'000;
  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  if (!port.ok()) {
    result.failed = true;
    return result;
  }
  result.fallback = server.handoff_fallback();

  static const char* kHam[] = {"alice@dept.test", "bob@dept.test",
                               "carol@dept.test", "dave@dept.test"};
  std::atomic<std::uint64_t> sessions{0};
  std::atomic<std::uint64_t> spam{0};
  std::atomic<std::uint64_t> mails{0};
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(duration_ms);
  std::vector<std::thread> clients;
  for (int t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      sams::util::Rng rng(seed + 1000003ULL * static_cast<std::uint64_t>(t));
      int i = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        const bool is_spam = rng.Bernoulli(0.7);
        const std::string rcpt =
            is_spam ? "victim" + std::to_string(i) + "@nowhere.test"
                    : kHam[rng.UniformInt(0, 3)];
        auto outcome = sams::net::SendMail(
            "127.0.0.1", *port, MakeJob(rcpt, "x\n"),
            sams::smtp::AbortStage::kNone, 3'000);
        ++i;
        if (!outcome.ok()) continue;
        sessions.fetch_add(1, std::memory_order_relaxed);
        if (outcome->outcome == ClientOutcome::kDelivered) {
          mails.fetch_add(1, std::memory_order_relaxed);
        } else if (outcome->outcome == ClientOutcome::kAllRejected) {
          spam.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.Stop();
  std::filesystem::remove_all(root);

  result.sessions = sessions.load();
  result.spam_rejected = spam.load();
  result.mails = mails.load();
  result.sessions_per_sec =
      seconds > 0 ? static_cast<double>(result.sessions) / seconds : 0;
  result.mails_per_sec =
      seconds > 0 ? static_cast<double>(result.mails) / seconds : 0;
  result.spam_per_sec =
      seconds > 0 ? static_cast<double>(result.spam_rejected) / seconds : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();
  sams::bench::PrintHeader(
      "Shard scaling: sharded pre-trust master, real TCP server",
      "section 5 (fork-after-trust), DESIGN.md section 9",
      "2 shards >= 1.5x single-master sessions/sec on a multi-core host");
  std::printf("  hardware threads: %u\n\n", hw);

  std::vector<int> shard_counts = {1, 2};
  if (!args.smoke) {
    shard_counts.push_back(4);
    if (hw > 4) shard_counts.push_back(static_cast<int>(hw));
  }
  const int duration_ms = args.smoke ? 600 : (args.quick ? 800 : 2'000);
  const int client_threads = args.smoke ? 4 : 8;

  sams::obs::Registry summary;
  sams::util::TextTable table(
      {"shards", "mode", "sessions/s", "spam 554/s", "ham mails/s"});
  double sps_1 = 0;
  double sps_2 = 0;
  bool any_failed = false;
  for (const int n : shard_counts) {
    const RunResult r = RunOne(n, client_threads, duration_ms, args.seed);
    if (r.failed) {
      any_failed = true;
      std::fprintf(stderr, "  run with %d shards FAILED to start\n", n);
      continue;
    }
    table.AddRow({std::to_string(n), r.fallback ? "handoff" : "reuseport",
                  sams::util::TextTable::Num(r.sessions_per_sec, 1),
                  sams::util::TextTable::Num(r.spam_per_sec, 1),
                  sams::util::TextTable::Num(r.mails_per_sec, 1)});
    const sams::obs::Labels labels = {{"shards", std::to_string(n)}};
    summary
        .GetGauge("bench_shard_scaling_sessions_per_sec",
                  "completed SMTP sessions per second", labels)
        .Set(r.sessions_per_sec);
    summary
        .GetGauge("bench_shard_scaling_ham_mails_per_sec",
                  "delivered (ham) mails per second", labels)
        .Set(r.mails_per_sec);
    if (n == 1) sps_1 = r.sessions_per_sec;
    if (n == 2) sps_2 = r.sessions_per_sec;
  }
  sams::bench::PrintTable(table);

  const double speedup = sps_1 > 0 ? sps_2 / sps_1 : 0;
  summary
      .GetGauge("bench_shard_scaling_speedup_2shard",
                "2-shard over 1-shard sessions/sec")
      .Set(speedup);
  summary
      .GetGauge("bench_shard_scaling_hw_threads", "hardware threads on runner")
      .Set(static_cast<double>(hw));

  const char* json_path = "BENCH_shard_scaling.json";
  const sams::util::Error err =
      sams::obs::WriteJsonSnapshot(summary, json_path);
  if (err.ok()) {
    std::printf("\n  summary written to %s\n", json_path);
  } else {
    std::fprintf(stderr, "\n  summary write failed: %s\n",
                 err.ToString().c_str());
  }

  std::printf("  2-shard speedup: %.2fx\n", speedup);
  if (any_failed) return 1;
  if (args.smoke) {
    if (hw < 2) {
      // One core: extra reactors share it, no scaling is physically
      // possible. Report and pass so 1-core CI stays green.
      std::printf("  gate SKIPPED: 1 hardware thread, scaling gate needs "
                  ">= 2 cores\n\n");
      return 0;
    }
    const bool ok = speedup >= 1.5;
    std::printf("  gate (>= 1.5x at 2 shards): %s\n\n",
                ok ? "pass" : "NO - REGRESSION");
    return ok ? 0 : 1;
  }
  std::printf("\n");
  return 0;
}
