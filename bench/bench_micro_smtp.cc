// Micro-benchmarks of the SMTP protocol layer: command parsing,
// dot-stuff codec, and a full in-memory server-session transaction.
#include <benchmark/benchmark.h>

#include "smtp/command.h"
#include "smtp/dotstuff.h"
#include "smtp/server_session.h"

namespace {

using namespace sams::smtp;  // NOLINT: bench-local convenience

void BM_ParseCommand(benchmark::State& state) {
  const std::string lines[] = {
      "HELO relay.example.com",
      "MAIL FROM:<sender@offers.example>",
      "RCPT TO:<victim@dept.example.edu>",
      "DATA",
      "QUIT",
  };
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseCommand(lines[i++ % 5]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseCommand);

void BM_DotStuffEncode(benchmark::State& state) {
  std::string body;
  for (int i = 0; i < 200; ++i) {
    body += i % 13 == 0 ? ".dotted line of text\n" : "plain line of text 123\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DotStuffEncode(body));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(body.size()));
}
BENCHMARK(BM_DotStuffEncode);

void BM_DotStuffDecode(benchmark::State& state) {
  std::string body;
  for (int i = 0; i < 200; ++i) body += "line of mail body text 0123456789\n";
  const std::string wire = DotStuffEncode(body);
  for (auto _ : state) {
    DotStuffDecoder decoder;
    benchmark::DoNotOptimize(decoder.Feed(wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DotStuffDecode);

void BM_FullServerTransaction(benchmark::State& state) {
  const std::string wire =
      "HELO bot.example\r\n"
      "MAIL FROM:<spam@offers.example>\r\n"
      "RCPT TO:<u0@dept.test>\r\nRCPT TO:<u1@dept.test>\r\n"
      "RCPT TO:<u2@dept.test>\r\nRCPT TO:<u3@dept.test>\r\n"
      "RCPT TO:<u4@dept.test>\r\nRCPT TO:<u5@dept.test>\r\n"
      "RCPT TO:<u6@dept.test>\r\n"
      "DATA\r\n" +
      DotStuffEncode(std::string(5'000, 'B')) + "QUIT\r\n";
  for (auto _ : state) {
    int mails = 0;
    ServerSession::Hooks hooks;
    hooks.send = [](std::string reply) {
      benchmark::DoNotOptimize(reply);
      return true;
    };
    hooks.validate_rcpt = [](const Address&) { return true; };
    hooks.on_mail = [&mails](Envelope&& env) {
      benchmark::DoNotOptimize(env);
      ++mails;
    };
    ServerSession session({}, std::move(hooks), "192.0.2.1");
    session.Start();
    session.Feed(wire);
    if (mails != 1) {
      state.SkipWithError("transaction did not deliver");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullServerTransaction)->Unit(benchmark::kMicrosecond);

void BM_HandoffSerializeResume(benchmark::State& state) {
  for (auto _ : state) {
    ServerSession::Hooks hooks;
    hooks.send = [](std::string reply) {
      benchmark::DoNotOptimize(reply);
      return true;
    };
    hooks.validate_rcpt = [](const Address&) { return true; };
    ServerSession master({}, std::move(hooks), "192.0.2.1");
    master.Start();
    master.Feed(
        "HELO bot\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<a@dept.test>\r\n");
    auto payload = master.SerializeHandoff();
    if (!payload.ok()) {
      state.SkipWithError("handoff failed");
      return;
    }
    ServerSession::Hooks worker_hooks;
    worker_hooks.send = [](std::string reply) {
      benchmark::DoNotOptimize(reply);
      return true;
    };
    worker_hooks.validate_rcpt = [](const Address&) { return true; };
    auto resumed =
        ServerSession::ResumeFromHandoff({}, std::move(worker_hooks), *payload);
    benchmark::DoNotOptimize(resumed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HandoffSerializeResume);

}  // namespace
