// Chaos bench: goodput and accept-path latency with ONE of three DNSBL
// lists blackholed (queries sent, no answer ever returns — injected via
// sams::fault), comparing three hardening configurations:
//
//   fail-open    timeout+retry+breaker, lost answers read "not listed"
//   fail-closed  same, but lost answers read "listed" (paranoid)
//   no-breaker   timeout+retry only: every lookup re-pays the timeout
//
// The claims under test:
//   - accept-path p99 stays bounded by QueryPolicy::Budget() in every
//     hardened configuration (the legacy path would wait forever),
//   - the circuit breaker collapses steady-state latency once it opens
//     (skips are free; no-breaker burns the full budget per lookup),
//   - fail-open preserves clean-sender goodput and still catches spam
//     through the surviving lists; fail-closed trades ALL goodput for
//     paranoia while a list is dark.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dnsbl/resolver.h"
#include "fault/injector.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/stats.h"

namespace {

using sams::bench::BenchArgs;
using sams::dnsbl::BlacklistDb;
using sams::dnsbl::CacheMode;
using sams::dnsbl::DnsblServer;
using sams::dnsbl::LatencyProfile;
using sams::dnsbl::QueryPolicy;
using sams::dnsbl::Resolver;
using sams::util::Ipv4;
using sams::util::SimTime;
using sams::util::TextTable;

struct Variant {
  const char* name;
  bool breaker_enabled;
  bool fail_open;
};

struct RunResult {
  double p50_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  double degraded_frac = 0;
  double clean_accept_frac = 0;  // goodput proxy: ham not falsely listed
  double spam_caught_frac = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_skips = 0;
  std::uint64_t timeouts = 0;
};

RunResult RunOne(const Variant& variant, const BenchArgs& args,
                 int n_connections) {
  // Three identical lists; bl-c.test goes dark for the whole run.
  auto db = std::make_shared<BlacklistDb>();
  sams::util::Rng db_rng(args.seed);
  std::vector<Ipv4> spammers;
  for (int i = 0; i < 256; ++i) {
    const Ipv4 ip(10, 0, static_cast<std::uint8_t>(db_rng.NextU64() % 256),
                  static_cast<std::uint8_t>(db_rng.NextU64() % 256));
    db->Add(ip);
    spammers.push_back(ip);
  }
  const LatencyProfile quick{2.0, 0.1, 0.0, 100.0, 200.0};
  DnsblServer server_a("bl-a.test", db, quick);
  DnsblServer server_b("bl-b.test", db, quick);
  DnsblServer server_c("bl-c.test", db, quick);

  sams::util::Rng resolver_rng(args.seed + 1);
  Resolver resolver(CacheMode::kNoCache,
                    {&server_a, &server_b, &server_c}, SimTime::Hours(24),
                    resolver_rng);
  QueryPolicy policy;
  policy.enabled = true;
  policy.timeout = SimTime::Millis(800);
  policy.max_retries = 1;
  policy.retry_backoff = SimTime::Millis(40);
  policy.breaker_enabled = variant.breaker_enabled;
  policy.breaker_threshold = 4;
  policy.breaker_cooldown = SimTime::Seconds(30);
  policy.fail_open = variant.fail_open;
  resolver.SetQueryPolicy(policy);

  sams::fault::ScopedArm arm(args.seed);
  sams::fault::Injector::Global().Set("dnsbl.query.bl-c.test",
                                      sams::fault::Policy{});

  sams::util::Rng traffic_rng(args.seed + 2);
  sams::util::Sampler latency_ms;
  std::uint64_t degraded = 0;
  std::uint64_t clean = 0, clean_accepted = 0;
  std::uint64_t spam = 0, spam_caught = 0;
  SimTime now = SimTime::Seconds(0);
  for (int i = 0; i < n_connections; ++i) {
    now = now + SimTime::Millis(200);  // 5 connections/sec offered
    const bool is_spam = traffic_rng.Uniform(0.0, 1.0) < 0.3;
    const Ipv4 ip =
        is_spam ? spammers[traffic_rng.NextU64() % spammers.size()]
                : Ipv4(172, 16,
                       static_cast<std::uint8_t>(traffic_rng.NextU64() % 256),
                       static_cast<std::uint8_t>(traffic_rng.NextU64() % 256));
    const auto out = resolver.Lookup(ip, now);
    latency_ms.Add(out.latency.millis());
    if (out.degraded) ++degraded;
    if (is_spam) {
      ++spam;
      if (out.blacklisted) ++spam_caught;
    } else {
      ++clean;
      if (!out.blacklisted) ++clean_accepted;
    }
  }

  RunResult result;
  result.p50_ms = latency_ms.Percentile(50);
  result.p99_ms = latency_ms.Percentile(99);
  result.max_ms = latency_ms.Percentile(100);
  result.degraded_frac =
      static_cast<double>(degraded) / static_cast<double>(n_connections);
  result.clean_accept_frac =
      clean == 0 ? 0.0
                 : static_cast<double>(clean_accepted) /
                       static_cast<double>(clean);
  result.spam_caught_frac =
      spam == 0 ? 0.0
                : static_cast<double>(spam_caught) / static_cast<double>(spam);
  result.breaker_trips = resolver.stats().breaker_trips;
  result.breaker_skips = resolver.stats().breaker_skips;
  result.timeouts = resolver.stats().timeouts;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Degraded goodput - 1 of 3 DNSBL lists blackholed (fault injection)",
      "robustness follow-up to ICDCS'09 sections 4.3/7.2",
      "hardened accept p99 <= QueryPolicy::Budget(); breaker restores "
      "latency; fail-open preserves goodput");

  const int n_connections = args.quick ? 2'000 : 20'000;
  const Variant variants[] = {
      {"fail-open", true, true},
      {"fail-closed", true, false},
      {"no-breaker", true /*overridden below*/, true},
  };

  QueryPolicy reference;
  reference.timeout = SimTime::Millis(800);
  reference.max_retries = 1;
  reference.retry_backoff = SimTime::Millis(40);
  const double budget_ms = reference.Budget().millis();
  std::printf("  connections: %d, blackholed list: bl-c.test, "
              "per-server budget: %.0f ms\n\n",
              n_connections, budget_ms);

  TextTable table({"config", "p50 (ms)", "p99 (ms)", "max (ms)", "degraded",
                   "ham accepted", "spam caught", "trips", "skips"});
  sams::obs::Registry summary;
  bool p99_bounded = true;
  for (const Variant& base : variants) {
    Variant variant = base;
    if (std::string(variant.name) == "no-breaker") {
      variant.breaker_enabled = false;
    }
    const RunResult r = RunOne(variant, args, n_connections);
    p99_bounded = p99_bounded && r.p99_ms <= budget_ms;
    table.AddRow({variant.name, TextTable::Num(r.p50_ms, 1),
                  TextTable::Num(r.p99_ms, 1), TextTable::Num(r.max_ms, 1),
                  TextTable::Pct(r.degraded_frac),
                  TextTable::Pct(r.clean_accept_frac),
                  TextTable::Pct(r.spam_caught_frac),
                  std::to_string(r.breaker_trips),
                  std::to_string(r.breaker_skips)});
    const sams::obs::Labels label = {{"config", variant.name}};
    summary
        .GetGauge("bench_fault_degraded_p99_ms",
                  "accept-path DNSBL wait p99 with one list dark", label)
        .Set(r.p99_ms);
    summary
        .GetGauge("bench_fault_degraded_ham_accept_frac",
                  "fraction of clean senders not falsely listed", label)
        .Set(r.clean_accept_frac);
    summary
        .GetGauge("bench_fault_degraded_spam_caught_frac",
                  "fraction of listed senders still caught", label)
        .Set(r.spam_caught_frac);
    summary
        .GetGauge("bench_fault_degraded_breaker_trips",
                  "circuit breaker trips over the run", label)
        .Set(static_cast<double>(r.breaker_trips));
  }
  sams::bench::PrintTable(table);
  summary
      .GetGauge("bench_fault_degraded_budget_ms",
                "QueryPolicy::Budget() for the hardened configurations")
      .Set(budget_ms);
  std::printf(
      "\n  p99 bounded by the %.0f ms budget in every configuration: %s\n",
      budget_ms, p99_bounded ? "yes" : "NO - REGRESSION");

  const char* json_path = "BENCH_fault_degraded.json";
  const sams::util::Error err = sams::obs::WriteJsonSnapshot(summary, json_path);
  if (err.ok()) {
    std::printf("  summary written to %s\n\n", json_path);
  } else {
    std::fprintf(stderr, "  summary write failed: %s\n\n",
                 err.ToString().c_str());
  }
  return p99_bounded ? 0 : 1;
}
