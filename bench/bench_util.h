// Shared plumbing for the figure/table benches: flag parsing and
// uniform headers so bench_output.txt reads as a sequence of
// paper-style tables.
//
// Every bench accepts:
//   --quick      shrink workloads (~10x faster, coarser statistics)
//   --seed=N     override the experiment seed
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/stats.h"

namespace sams::bench {

struct BenchArgs {
  bool quick = false;
  std::uint64_t seed = 42;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
      } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
        args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
        std::exit(2);
      }
    }
    return args;
  }
};

inline void PrintHeader(const char* experiment, const char* paper_ref,
                        const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  paper: %s\n", paper_ref);
  std::printf("  claim: %s\n", claim);
  std::printf("==============================================================\n");
}

inline void PrintTable(const util::TextTable& table) {
  std::fputs(table.ToString().c_str(), stdout);
}

}  // namespace sams::bench
