// Micro-benchmarks of the content filter: tokenizer throughput, Bayes
// training and scoring, combined rule+Bayes classification.
#include <benchmark/benchmark.h>

#include "filter/corpus.h"
#include "filter/spam_filter.h"

namespace {

using namespace sams::filter;  // NOLINT: bench-local convenience

void BM_Tokenize(benchmark::State& state) {
  sams::util::Rng rng(1);
  const std::string body = MakeHamBody(rng) + MakeSpamBody(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tokenize(body));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(body.size()));
}
BENCHMARK(BM_Tokenize);

void BM_BayesTrain(benchmark::State& state) {
  sams::util::Rng rng(2);
  std::vector<std::string> docs;
  for (int i = 0; i < 64; ++i) docs.push_back(MakeSpamBody(rng));
  std::size_t i = 0;
  BayesClassifier model;
  for (auto _ : state) {
    model.Train(docs[i++ % docs.size()], i % 2 == 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BayesTrain);

void BM_BayesScore(benchmark::State& state) {
  sams::util::Rng rng(3);
  BayesClassifier model;
  for (int i = 0; i < 200; ++i) {
    model.Train(MakeSpamBody(rng), true);
    model.Train(MakeHamBody(rng), false);
  }
  const std::string probe = MakeSpamBody(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Score(probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BayesScore);

void BM_FullClassify(benchmark::State& state) {
  sams::util::Rng rng(4);
  SpamFilter filter;
  for (int i = 0; i < 200; ++i) {
    filter.bayes().Train(MakeSpamBody(rng), true);
    filter.bayes().Train(MakeHamBody(rng), false);
  }
  sams::smtp::Envelope envelope;
  envelope.mail_from = *sams::smtp::Path::Parse("<s@x.test>");
  for (int i = 0; i < 7; ++i) {
    envelope.rcpt_to.push_back(
        *sams::smtp::Address::Parse("u" + std::to_string(i) + "@d.test"));
  }
  envelope.body = MakeSpamBody(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Classify(envelope));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullClassify);

}  // namespace
