// Figure 13: interarrival-time CDFs of spam from the same IP versus
// the same /24 prefix, in the sinkhole trace.
//
// Paper: "the inter-arrival time in terms of IP prefix origins is
// shorter than in terms of individual IP origins, suggesting
// significant temporal locality in /24 prefixes among the spammers" —
// the property that makes prefix-granularity caching effective while
// botnets defeat per-IP caching.
#include <cstdio>
#include <unordered_map>

#include "bench/bench_util.h"
#include "trace/sinkhole.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const auto args = sams::bench::BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Figure 13 - interarrival CDF: same IP vs same /24 prefix",
      "ICDCS'09 section 7.1, Figure 13",
      "prefix-level interarrivals are much shorter than IP-level ones");

  sams::trace::SinkholeConfig cfg;
  if (args.quick) {
    cfg.n_connections = 20'000;
    cfg.n_ips = 4'000;
    cfg.n_prefixes = 1'800;
  }
  cfg.seed = args.seed == 42 ? cfg.seed : args.seed;
  const sams::trace::SinkholeModel sinkhole(cfg);

  std::unordered_map<sams::util::Ipv4, sams::util::SimTime> last_ip;
  std::unordered_map<sams::util::Prefix24, sams::util::SimTime> last_prefix;
  sams::util::Sampler ip_gaps, prefix_gaps;
  for (const auto& session : sinkhole.sessions()) {
    if (auto it = last_ip.find(session.client_ip); it != last_ip.end()) {
      ip_gaps.Add((session.arrival - it->second).seconds());
    }
    last_ip[session.client_ip] = session.arrival;
    const sams::util::Prefix24 prefix(session.client_ip);
    if (auto it = last_prefix.find(prefix); it != last_prefix.end()) {
      prefix_gaps.Add((session.arrival - it->second).seconds());
    }
    last_prefix[prefix] = session.arrival;
  }

  sams::util::TextTable table({"time (s)", "CDF same-IP", "CDF same-/24"});
  for (int t : {60, 300, 600, 1200, 1800, 2400, 3000, 3600, 4200, 5000}) {
    table.AddRow({std::to_string(t),
                  sams::util::TextTable::Pct(ip_gaps.CdfAt(t)),
                  sams::util::TextTable::Pct(prefix_gaps.CdfAt(t))});
  }
  sams::bench::PrintTable(table);
  std::printf(
      "\n  median interarrival: same-IP %.0f s vs same-/24 %.0f s "
      "(paper: prefix curve well above IP curve)\n"
      "  samples: %zu IP gaps, %zu prefix gaps\n\n",
      ip_gaps.Percentile(50), prefix_gaps.Percentile(50), ip_gaps.count(),
      prefix_gaps.count());
  return 0;
}
