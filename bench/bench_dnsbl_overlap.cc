// DNSBL overlap bench: visible DNSBL latency of the REAL server when
// the async pipeline overlaps the lookup with the SMTP dialog
// (DESIGN.md §10, paper §4.3/Figure 5).
//
// A UdpDnsblDaemon answers AAAA /25-bitmap queries with an injected
// response delay (the emulated WAN RTT to a remote blacklist). Clients
// run a paced dialog — ~25 ms of think time between banner, HELO, MAIL
// and RCPT, the window the paper says the lookup should hide in — and
// measure the stall between sending RCPT and its reply, which is
// exactly the DNSBL latency the client can see. Four modes:
//
//   no-dnsbl    — lookups off; the floor (RCPT answers immediately).
//   blocking    — lookup launched only at RCPT (dnsbl_overlap=false):
//                 every session stalls for the full injected RTT.
//   overlapped  — lookup launched at accept; the RTT hides behind the
//                 dialog and the RCPT stall collapses to ~0.
//   cache-warm  — overlapped + every client maps to one IP: after a
//                 warm-up miss, verdicts come from the shared cache.
//
// --smoke gates: overlapped hides >= 80% of the blocking-mode p50
// RCPT stall, and cache-warm's p50 stall is < 1 ms above the no-dnsbl
// floor. Writes BENCH_dnsbl_overlap.json.
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "dnsbl/blacklist_db.h"
#include "dnsbl/udp_daemon.h"
#include "mta/smtp_server.h"
#include "net/tcp.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/stats.h"

namespace {

using sams::mta::Architecture;
using sams::mta::RealServerConfig;
using sams::mta::RecipientDb;
using sams::mta::SmtpServer;

struct Args {
  bool quick = false;
  bool smoke = false;
  std::uint64_t seed = 42;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

bool SendLine(int fd, const char* line) {
  const std::size_t len = std::strlen(line);
  return ::send(fd, line, len, MSG_NOSIGNAL) == static_cast<ssize_t>(len);
}

// Reads one CRLF-terminated reply line (all server replies here are
// single-line).
bool ReadReply(int fd, std::string& line) {
  line.clear();
  char ch = 0;
  while (line.size() < 512) {
    const ssize_t n = ::recv(fd, &ch, 1, 0);
    if (n <= 0) return false;
    if (ch == '\n') return true;
    if (ch != '\r') line.push_back(ch);
  }
  return false;
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// One paced SMTP dialog up to the RCPT reply; returns false on any
// transport failure. `rcpt_stall_ms` = time between sending RCPT and
// its reply — the DNSBL latency the client can see.
bool RunDialog(std::uint16_t port, int think_ms, double& rcpt_stall_ms,
               double& to_rcpt_reply_ms) {
  auto fd = sams::net::TcpConnect("127.0.0.1", port);
  if (!fd.ok()) return false;
  if (!sams::net::SetRecvTimeout(fd->get(), 10'000).ok()) return false;
  const auto connect_time = std::chrono::steady_clock::now();
  const auto think = std::chrono::milliseconds(think_ms);

  std::string reply;
  if (!ReadReply(fd->get(), reply)) return false;  // 220 banner
  std::this_thread::sleep_for(think);
  if (!SendLine(fd->get(), "HELO bench.client\r\n")) return false;
  if (!ReadReply(fd->get(), reply)) return false;
  std::this_thread::sleep_for(think);
  if (!SendLine(fd->get(), "MAIL FROM:<load@bench.test>\r\n")) return false;
  if (!ReadReply(fd->get(), reply)) return false;
  std::this_thread::sleep_for(think);

  const auto rcpt_time = std::chrono::steady_clock::now();
  if (!SendLine(fd->get(), "RCPT TO:<alice@dept.test>\r\n")) return false;
  if (!ReadReply(fd->get(), reply)) return false;
  rcpt_stall_ms = MillisSince(rcpt_time);
  to_rcpt_reply_ms = MillisSince(connect_time);
  if (reply.rfind("250", 0) != 0) return false;  // unexpected verdict
  (void)SendLine(fd->get(), "QUIT\r\n");
  (void)ReadReply(fd->get(), reply);
  return true;
}

enum class Mode { kNoDnsbl, kBlocking, kOverlapped, kCacheWarm };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kNoDnsbl: return "no-dnsbl";
    case Mode::kBlocking: return "blocking";
    case Mode::kOverlapped: return "overlapped";
    case Mode::kCacheWarm: return "cache-warm";
  }
  return "?";
}

struct RunResult {
  bool failed = false;
  double p50_stall_ms = 0;
  double p95_stall_ms = 0;
  double p50_to_rcpt_ms = 0;
  double sessions_per_sec = 0;
  std::uint64_t sessions = 0;
};

RunResult RunOne(Mode mode, std::uint16_t dns_port, const std::string& zone,
                 int sessions_per_thread, int client_threads, int think_ms) {
  RunResult result;
  const std::string root =
      (std::filesystem::temp_directory_path() /
       (std::string("sams_bench_overlap_") + ModeName(mode)))
          .string();
  std::filesystem::remove_all(root);
  auto store = sams::mfs::MakeMfsStore(root, {});
  if (!store.ok()) {
    result.failed = true;
    return result;
  }
  RecipientDb db;
  db.AddMailbox("alice", "dept.test");

  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  cfg.num_shards = 2;
  cfg.recv_timeout_ms = 10'000;
  if (mode != Mode::kNoDnsbl) {
    cfg.dnsbl.enabled = true;
    cfg.dnsbl.zones = {{zone, dns_port}};
    cfg.dnsbl_overlap = mode != Mode::kBlocking;
    // Every accepted loopback connection poses as a distinct client IP
    // in a distinct /25 (so every session is a cache miss), except in
    // cache-warm mode where all sessions share one IP.
    auto counter = std::make_shared<std::atomic<std::uint32_t>>(0);
    const bool warm = mode == Mode::kCacheWarm;
    cfg.dnsbl_ip_mapper = [counter, warm](const std::string&) {
      if (warm) return sams::util::Ipv4(10, 1, 2, 3);
      const std::uint32_t n = counter->fetch_add(1, std::memory_order_relaxed);
      return sams::util::Ipv4((10u << 24) | (n << 7) | 9u);
    };
  }
  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  if (!port.ok()) {
    result.failed = true;
    return result;
  }

  if (mode == Mode::kCacheWarm) {
    // One throwaway session pays the miss and fills the shared cache.
    double stall = 0, total = 0;
    (void)RunDialog(*port, /*think_ms=*/0, stall, total);
  }

  std::vector<std::vector<double>> stalls(
      static_cast<std::size_t>(client_threads));
  std::vector<std::vector<double>> totals(
      static_cast<std::size_t>(client_threads));
  std::atomic<std::uint64_t> ok_sessions{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < sessions_per_thread; ++i) {
        double stall = 0, total = 0;
        if (!RunDialog(*port, think_ms, stall, total)) continue;
        stalls[static_cast<std::size_t>(t)].push_back(stall);
        totals[static_cast<std::size_t>(t)].push_back(total);
        ok_sessions.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& client : clients) client.join();
  const double seconds = MillisSince(start) / 1000.0;
  server.Stop();
  std::filesystem::remove_all(root);

  std::vector<double> all_stalls, all_totals;
  for (auto& v : stalls) all_stalls.insert(all_stalls.end(), v.begin(), v.end());
  for (auto& v : totals) all_totals.insert(all_totals.end(), v.begin(), v.end());
  if (all_stalls.empty()) {
    result.failed = true;
    return result;
  }
  std::sort(all_stalls.begin(), all_stalls.end());
  std::sort(all_totals.begin(), all_totals.end());
  auto pct = [](const std::vector<double>& v, double p) {
    return v[std::min(v.size() - 1,
                      static_cast<std::size_t>(p * static_cast<double>(v.size())))];
  };
  result.p50_stall_ms = pct(all_stalls, 0.50);
  result.p95_stall_ms = pct(all_stalls, 0.95);
  result.p50_to_rcpt_ms = pct(all_totals, 0.50);
  result.sessions = ok_sessions.load();
  result.sessions_per_sec =
      seconds > 0 ? static_cast<double>(result.sessions) / seconds : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  // Injected DNS RTT and the dialog think time it must hide in:
  // 3 think-gaps (banner->HELO->MAIL->RCPT) = 75 ms > 40 ms RTT, so
  // the overlapped lookup has comfortably landed by RCPT.
  const int delay_ms = 40;
  const int think_ms = 25;
  const int client_threads = 4;
  const int sessions_per_thread = args.smoke ? 4 : (args.quick ? 6 : 12);

  sams::bench::PrintHeader(
      "DNSBL overlap: async pipeline vs blocking lookup, real TCP server",
      "section 4.3 / Figure 5, DESIGN.md section 10",
      "accept-time lookup hides >= 80% of DNS RTT behind the SMTP dialog");
  std::printf("  injected DNS RTT: %d ms, dialog think time: %d ms/step\n\n",
              delay_ms, think_ms);

  // The blacklist daemon: nothing the bench clients pose as is listed
  // (every RCPT should see 250), but the zone answers every /25 query
  // after the injected delay.
  sams::dnsbl::BlacklistDb db;
  db.Add(sams::util::Ipv4(192, 0, 2, 66));
  sams::dnsbl::UdpDnsblDaemon daemon("bench.dnsbl.test", db,
                                     /*ttl_seconds=*/3600, delay_ms);
  auto dns_port = daemon.Start();
  if (!dns_port.ok()) {
    std::fprintf(stderr, "daemon start: %s\n",
                 dns_port.error().ToString().c_str());
    return 1;
  }

  sams::obs::Registry summary;
  sams::util::TextTable table({"mode", "p50 RCPT stall ms", "p95 stall ms",
                               "p50 to-RCPT-reply ms", "sessions/s"});
  RunResult by_mode[4];
  bool any_failed = false;
  for (const Mode mode : {Mode::kNoDnsbl, Mode::kBlocking, Mode::kOverlapped,
                          Mode::kCacheWarm}) {
    RunResult r = RunOne(mode, *dns_port, daemon.zone(), sessions_per_thread,
                         client_threads, think_ms);
    by_mode[static_cast<int>(mode)] = r;
    if (r.failed) {
      any_failed = true;
      std::fprintf(stderr, "  mode %s FAILED\n", ModeName(mode));
      continue;
    }
    table.AddRow({ModeName(mode), sams::util::TextTable::Num(r.p50_stall_ms, 2),
                  sams::util::TextTable::Num(r.p95_stall_ms, 2),
                  sams::util::TextTable::Num(r.p50_to_rcpt_ms, 1),
                  sams::util::TextTable::Num(r.sessions_per_sec, 1)});
    const sams::obs::Labels labels = {{"mode", ModeName(mode)}};
    summary
        .GetGauge("bench_dnsbl_overlap_p50_rcpt_stall_ms",
                  "p50 stall between RCPT and its reply", labels)
        .Set(r.p50_stall_ms);
    summary
        .GetGauge("bench_dnsbl_overlap_p95_rcpt_stall_ms",
                  "p95 stall between RCPT and its reply", labels)
        .Set(r.p95_stall_ms);
    summary
        .GetGauge("bench_dnsbl_overlap_sessions_per_sec",
                  "completed paced sessions per second", labels)
        .Set(r.sessions_per_sec);
  }
  daemon.Stop();
  sams::bench::PrintTable(table);

  const RunResult& floor = by_mode[static_cast<int>(Mode::kNoDnsbl)];
  const RunResult& blocking = by_mode[static_cast<int>(Mode::kBlocking)];
  const RunResult& overlapped = by_mode[static_cast<int>(Mode::kOverlapped)];
  const RunResult& warm = by_mode[static_cast<int>(Mode::kCacheWarm)];
  const double hidden_fraction =
      blocking.p50_stall_ms > 0
          ? 1.0 - overlapped.p50_stall_ms / blocking.p50_stall_ms
          : 0.0;
  const double warm_over_floor_ms = warm.p50_stall_ms - floor.p50_stall_ms;
  summary
      .GetGauge("bench_dnsbl_overlap_hidden_fraction",
                "share of the blocking-mode p50 RCPT stall the overlap hides")
      .Set(hidden_fraction);
  summary
      .GetGauge("bench_dnsbl_overlap_warm_over_floor_ms",
                "cache-warm p50 stall minus the no-dnsbl floor")
      .Set(warm_over_floor_ms);
  summary
      .GetGauge("bench_dnsbl_overlap_injected_rtt_ms", "injected DNS RTT")
      .Set(delay_ms);

  const char* json_path = "BENCH_dnsbl_overlap.json";
  const sams::util::Error err = sams::obs::WriteJsonSnapshot(summary, json_path);
  if (err.ok()) {
    std::printf("\n  summary written to %s\n", json_path);
  } else {
    std::fprintf(stderr, "\n  summary write failed: %s\n",
                 err.ToString().c_str());
  }

  std::printf("  overlap hides %.0f%% of the blocking p50 stall; cache-warm "
              "is %+.2f ms vs the no-dnsbl floor\n",
              hidden_fraction * 100.0, warm_over_floor_ms);
  if (any_failed) return 1;
  if (args.smoke) {
    const bool hide_ok = hidden_fraction >= 0.80;
    const bool warm_ok = warm_over_floor_ms < 1.0;
    std::printf("  gate (>= 80%% hidden): %s\n",
                hide_ok ? "pass" : "NO - REGRESSION");
    std::printf("  gate (cache-warm < 1 ms over floor): %s\n\n",
                warm_ok ? "pass" : "NO - REGRESSION");
    return hide_ok && warm_ok ? 0 : 1;
  }
  std::printf("\n");
  return 0;
}
