// Figure 1: distribution of mail servers across ~400,000 company
// domains (January 2007 remote fingerprinting, Simpson & Bekman [25]).
//
// This is an external Internet measurement the paper uses as
// motivation; it cannot be re-measured offline. The bench prints the
// transcribed dataset (see trace/survey.cc for provenance).
#include <cstdio>

#include "bench/bench_util.h"
#include "trace/survey.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  (void)sams::bench::BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Figure 1 - MTA market share, 400k fingerprinted domains (static)",
      "ICDCS'09 section 2, Figure 1",
      "sendmail largest (~12%), postfix second among open MTAs");

  sams::util::TextTable table({"mail server", "% of domains"});
  for (const auto& share : sams::trace::FigureOneSurvey()) {
    table.AddRow({std::string(share.name),
                  sams::util::TextTable::Num(share.percent, 1)});
  }
  sams::bench::PrintTable(table);
  std::printf(
      "\n  NOTE: values transcribed (approximately) from the paper's bar\n"
      "  chart; external measurement data, not a system result of this\n"
      "  reproduction.\n\n");
  return 0;
}
