// Figure 5: CDF of the time to query six DNSBL servers for the
// blacklist status of the ~19,000 sinkhole spammer IPs.
//
// Paper: "between 16%-50% of 19,000 queries sent to the six DNSBLs
// took more than 100 msec."
#include <cstdio>

#include "bench/bench_util.h"
#include "dnsbl/dnsbl_server.h"
#include "trace/sinkhole.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const auto args = sams::bench::BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Figure 5 - CDF of DNSBL query time, six lists x ~19k spammer IPs",
      "ICDCS'09 section 4.3, Figure 5",
      "16%-50% of queries take > 100 ms depending on the list");

  sams::trace::SinkholeConfig cfg;
  if (args.quick) {
    cfg.n_connections = 10'000;
    cfg.n_ips = 4'000;
    cfg.n_prefixes = 1'800;
  }
  const sams::trace::SinkholeModel sinkhole(cfg);
  sams::util::Rng rng(args.seed);
  const auto servers =
      sams::dnsbl::MakeFigureFiveServers(sinkhole.bot_ips(), rng);

  // Query every spammer IP against every list; collect per-list CDFs.
  std::vector<sams::util::Sampler> latencies(servers.size());
  for (const auto ip : sinkhole.bot_ips()) {
    for (std::size_t s = 0; s < servers.size(); ++s) {
      latencies[s].Add(servers[s]->QueryIp(ip, rng).latency.millis());
    }
  }

  sams::util::TextTable table({"list", "p50 (ms)", "p90 (ms)", ">100ms",
                               "listed"});
  for (std::size_t s = 0; s < servers.size(); ++s) {
    table.AddRow({std::string(servers[s]->zone()),
                  sams::util::TextTable::Num(latencies[s].Percentile(50), 1),
                  sams::util::TextTable::Num(latencies[s].Percentile(90), 1),
                  sams::util::TextTable::Pct(1.0 - latencies[s].CdfAt(100.0)),
                  sams::util::TextTable::Pct(
                      static_cast<double>(servers[s]->db().size()) /
                      static_cast<double>(sinkhole.bot_ips().size()))});
  }
  sams::bench::PrintTable(table);

  // The CDF series, 25/50/../200 ms (the figure's x-axis).
  std::printf("\n  CDF (fraction of queries completed by t):\n");
  sams::util::TextTable cdf({"t (ms)", servers[0]->zone().c_str(),
                             servers[1]->zone().c_str(),
                             servers[2]->zone().c_str(),
                             servers[3]->zone().c_str(),
                             servers[4]->zone().c_str(),
                             servers[5]->zone().c_str()});
  for (int t : {25, 50, 75, 100, 150, 200, 250}) {
    std::vector<std::string> row = {std::to_string(t)};
    for (auto& sampler : latencies) {
      row.push_back(sams::util::TextTable::Pct(sampler.CdfAt(t)));
    }
    cdf.AddRow(std::move(row));
  }
  sams::bench::PrintTable(cdf);
  std::printf(
      "\n  paper: the six curves' >100ms mass spans ~16%% (cbl) to ~50%% "
      "(dul.dnsbl.sorbs)\n\n");
  return 0;
}
