// Figure 12: CDF of the number of CBL-blacklisted IPs per /24 prefix,
// over the 8,832 prefixes that spammed the sinkhole.
//
// Paper: "40% of the prefixes contained more than 10 IPs blacklisted
// in cbl.abuseat.org, and about 102 of these /24 prefixes (about 3%)
// contained more than 100 IPs blacklisted in CBL" — the spatial
// locality that motivates prefix-granularity DNSBL answers.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "trace/sinkhole.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const auto args = sams::bench::BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Figure 12 - CDF of blacklisted IPs per /24 (sinkhole prefixes)",
      "ICDCS'09 section 7.1, Figure 12",
      "40% of prefixes have >10 CBL-listed IPs; ~3% (about 100) have >100");

  sams::trace::SinkholeConfig cfg;
  if (args.quick) {
    cfg.n_connections = 20'000;
    cfg.n_ips = 4'000;
    cfg.n_prefixes = 1'800;
  }
  cfg.seed = args.seed == 42 ? cfg.seed : args.seed;
  const sams::trace::SinkholeModel sinkhole(cfg);

  sams::util::Sampler densities;
  for (const auto& [prefix, density] : sinkhole.cbl_density()) {
    densities.Add(density);
  }

  sams::util::TextTable table({"blacklisted IPs in /24", "CDF"});
  for (int x : {1, 2, 5, 10, 20, 30, 50, 70, 100, 150, 200, 254}) {
    table.AddRow({std::to_string(x),
                  sams::util::TextTable::Pct(densities.CdfAt(x))});
  }
  sams::bench::PrintTable(table);

  const double over10 = 1.0 - densities.CdfAt(10);
  const double over100 = 1.0 - densities.CdfAt(100);
  std::printf(
      "\n  prefixes with >10 listed IPs:  %.1f%% (paper: ~40%%)\n"
      "  prefixes with >100 listed IPs: %.1f%% = %.0f prefixes "
      "(paper: ~3%%, about 102)\n"
      "  total prefixes: %zu (paper: 8,832)\n\n",
      100 * over10, 100 * over100,
      over100 * static_cast<double>(densities.count()), densities.count());
  return 0;
}
