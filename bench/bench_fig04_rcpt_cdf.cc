// Figure 4: CDF of the number of recipients per connection in the
// spam-sinkhole trace.
//
// Paper: "the number of 'rcpt to' fields in a single spam mail is
// commonly between 5-15"; §6.3 cites a mean of ~7. In contrast,
// legitimate mail in the Univ trace averages 1.02 recipients.
#include <cstdio>

#include "bench/bench_util.h"
#include "trace/sinkhole.h"
#include "trace/univ.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const auto args = sams::bench::BenchArgs::Parse(argc, argv);
  sams::bench::PrintHeader(
      "Figure 4 - CDF of recipients per connection (sinkhole trace)",
      "ICDCS'09 section 4.2, Figure 4",
      "spam carries 5-15 RCPTs (mean ~7); legitimate mail averages 1.02");

  sams::trace::SinkholeConfig cfg;
  if (args.quick) {
    cfg.n_connections = 20'000;
    cfg.n_ips = 4'000;
    cfg.n_prefixes = 1'800;
  }
  cfg.seed = args.seed == 42 ? cfg.seed : args.seed;
  const sams::trace::SinkholeModel sinkhole(cfg);

  // Empirical CDF over recipient counts 1..20.
  std::vector<std::size_t> counts(21, 0);
  for (const auto& session : sinkhole.sessions()) {
    if (session.n_rcpts <= 20) ++counts[session.n_rcpts];
  }
  sams::util::TextTable table({"recipients", "pdf", "cdf"});
  double cum = 0;
  for (int k = 1; k <= 20; ++k) {
    const double p =
        static_cast<double>(counts[static_cast<std::size_t>(k)]) /
        static_cast<double>(sinkhole.sessions().size());
    cum += p;
    table.AddRow({std::to_string(k), sams::util::TextTable::Pct(p),
                  sams::util::TextTable::Pct(cum)});
  }
  sams::bench::PrintTable(table);

  double mean = 0, mass_5_15 = 0;
  for (int k = 1; k <= 20; ++k) {
    const double p =
        static_cast<double>(counts[static_cast<std::size_t>(k)]) /
        static_cast<double>(sinkhole.sessions().size());
    mean += k * p;
    if (k >= 5 && k <= 15) mass_5_15 += p;
  }
  std::printf(
      "\n  mean recipients/connection: %.2f (paper: ~7)\n"
      "  mass in [5, 15]: %.1f%% (paper: 'commonly between 5-15')\n",
      mean, 100 * mass_5_15);

  // Contrast: the Univ trace's legitimate mail.
  sams::trace::UnivConfig ucfg;
  ucfg.n_connections = 50'000;
  ucfg.n_spam_ips = 15'000;
  ucfg.n_ham_ips = 1'200;
  const sams::trace::UnivModel univ(ucfg);
  double ham_rcpts = 0;
  std::size_t ham_sessions = 0;
  for (const auto& session : univ.sessions()) {
    if (session.kind == sams::trace::SessionKind::kNormal && !session.is_spam) {
      ham_rcpts += session.n_rcpts;
      ++ham_sessions;
    }
  }
  std::printf(
      "  legitimate (Univ) mean recipients: %.3f (paper: 1.02, Clayton [3])\n\n",
      ham_rcpts / static_cast<double>(ham_sessions));
  return 0;
}
